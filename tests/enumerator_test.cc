#include "sgm/core/enumerate/enumerator.h"

#include <gtest/gtest.h>

#include "sgm/core/filter/filter.h"
#include "sgm/core/order/order.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest()
      : query_(PaperQuery()),
        data_(PaperData()),
        filtered_(RunFilter(FilterMethod::kGraphQL, query_, data_)),
        aux_(AuxStructure::BuildAllEdges(query_, data_,
                                         filtered_.candidates)),
        order_(GraphQlOrder(query_, filtered_.candidates)) {}

  EnumerateStats Run(EnumerateOptions options) {
    return Enumerate(query_, data_, filtered_.candidates, &aux_, order_,
                     options);
  }

  Graph query_;
  Graph data_;
  FilterResult filtered_;
  AuxStructure aux_;
  std::vector<Vertex> order_;
};

TEST_F(EnumeratorTest, AllLocalCandidateMethodsAgree) {
  for (const LocalCandidateMethod method :
       {LocalCandidateMethod::kNeighborScan,
        LocalCandidateMethod::kCandidateScan,
        LocalCandidateMethod::kPivotIndex,
        LocalCandidateMethod::kIntersect}) {
    EnumerateOptions options;
    options.lc_method = method;
    options.restrict_neighbor_scan_to_candidates = true;
    const EnumerateStats stats = Run(options);
    EXPECT_EQ(stats.match_count, 2u) << LocalCandidateMethodName(method);
    EXPECT_FALSE(stats.timed_out);
    EXPECT_GT(stats.recursion_calls, 0u);
  }
}

TEST_F(EnumeratorTest, AllIntersectionKernelsAgree) {
  for (const IntersectionMethod kernel : kAllIntersectionMethods) {
    EnumerateOptions options;
    options.intersection = kernel;
    const EnumerateStats stats = Run(options);
    EXPECT_EQ(stats.match_count, 2u) << IntersectionMethodName(kernel);
  }
}

TEST_F(EnumeratorTest, BitmapKernelsAgreeOnBitmapAux) {
  // Rebuild the aux structure with the bitmap sidecar so kBitmap/kAuto take
  // the word-wise path (on the plain fixture aux they fall back to sorted
  // arrays, which AllIntersectionKernelsAgree already covers).
  AuxBuildOptions build;
  build.build_bitmaps = true;
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query_, data_, filtered_.candidates, build);
  for (const IntersectionMethod kernel :
       {IntersectionMethod::kBitmap, IntersectionMethod::kAuto}) {
    EnumerateOptions options;
    options.intersection = kernel;
    const EnumerateStats stats = Enumerate(query_, data_, filtered_.candidates,
                                           &aux, order_, options);
    EXPECT_EQ(stats.match_count, 2u) << IntersectionMethodName(kernel);
    if (kernel == IntersectionMethod::kBitmap) {
      EXPECT_GT(stats.bitmap_intersections, 0u);
    }
  }
}

TEST_F(EnumeratorTest, LcCacheTogglePreservesCounts) {
  EnumerateOptions with_cache;
  with_cache.use_lc_cache = true;
  EnumerateOptions without_cache;
  without_cache.use_lc_cache = false;
  const EnumerateStats cached = Run(with_cache);
  const EnumerateStats uncached = Run(without_cache);
  EXPECT_EQ(cached.match_count, uncached.match_count);
  EXPECT_EQ(cached.recursion_calls, uncached.recursion_calls);
  EXPECT_EQ(uncached.lc_cache_hits, 0u);
  EXPECT_EQ(uncached.lc_cache_misses, 0u);
}

TEST_F(EnumeratorTest, LcCacheReusesAcrossSiblingsAndInvalidates) {
  // Query: u0(A)-u1(B), u0-u2(C), u0-u3(D), u1-u3. Under the static order
  // (u0,u1,u2,u3) the vertex extended at depth 2 (u2) is NOT a backward
  // neighbor of u3, so every sibling candidate of u2 revisits depth 3 with
  // identical backward images (u0,u1) -> cache hits. When u1 moves to its
  // next image the key changes and the entry must be invalidated.
  const Graph query = ::sgm::testing::MakeGraph(
      {::sgm::testing::kLabelA, ::sgm::testing::kLabelB,
       ::sgm::testing::kLabelC, ::sgm::testing::kLabelD},
      {{0, 1}, {0, 2}, {0, 3}, {1, 3}});
  // Data: one A hub, two B vertices each wired to a distinct D partner, and
  // three interchangeable C vertices (the sibling fan at depth 2).
  const Graph data = ::sgm::testing::MakeGraph(
      {::sgm::testing::kLabelA, ::sgm::testing::kLabelB,
       ::sgm::testing::kLabelB, ::sgm::testing::kLabelC,
       ::sgm::testing::kLabelC, ::sgm::testing::kLabelC,
       ::sgm::testing::kLabelD, ::sgm::testing::kLabelD},
      {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7},
       {1, 6}, {2, 7}});
  const FilterResult filtered = RunFilter(FilterMethod::kGraphQL, query, data);
  const AuxStructure aux =
      AuxStructure::BuildAllEdges(query, data, filtered.candidates);
  const std::vector<Vertex> order = {0, 1, 2, 3};

  EnumerateOptions cached_options;
  cached_options.use_lc_cache = true;
  const EnumerateStats cached =
      Enumerate(query, data, filtered.candidates, &aux, order, cached_options);
  // 2 B-images x 3 C-siblings x 1 forced D partner each.
  EXPECT_EQ(cached.match_count, 6u);
  // Per B-image: 1 miss then 2 sibling hits; the B change invalidates.
  EXPECT_EQ(cached.lc_cache_misses, 2u);
  EXPECT_EQ(cached.lc_cache_hits, 4u);

  EnumerateOptions uncached_options;
  uncached_options.use_lc_cache = false;
  const EnumerateStats uncached = Enumerate(query, data, filtered.candidates,
                                            &aux, order, uncached_options);
  EXPECT_EQ(uncached.match_count, 6u);
  EXPECT_EQ(uncached.lc_cache_hits, 0u);
  EXPECT_EQ(uncached.lc_cache_misses, 0u);
}

TEST_F(EnumeratorTest, FailingSetsPreserveCounts) {
  EnumerateOptions options;
  options.use_failing_sets = true;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
}

TEST_F(EnumeratorTest, MatchLimitStopsEarly) {
  EnumerateOptions options;
  options.max_matches = 1;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 1u);
  EXPECT_TRUE(stats.reached_match_limit);
}

TEST_F(EnumeratorTest, CallbackCanStopEnumeration) {
  EnumerateOptions options;
  uint64_t seen = 0;
  const EnumerateStats stats =
      Enumerate(query_, data_, filtered_.candidates, &aux_, order_, options,
                nullptr, [&](std::span<const Vertex>) {
                  ++seen;
                  return false;  // stop after the first match
                });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(stats.match_count, 1u);
}

TEST_F(EnumeratorTest, StatsTrackLocalCandidates) {
  EnumerateOptions options;
  const EnumerateStats stats = Run(options);
  EXPECT_GT(stats.local_candidates_scanned, 0u);
  EXPECT_GE(stats.enumeration_ms, 0.0);
}

TEST_F(EnumeratorTest, UnlimitedSettingsFindAll) {
  EnumerateOptions options;
  options.max_matches = 0;
  options.time_limit_ms = 0;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
  EXPECT_FALSE(stats.reached_match_limit);
  EXPECT_FALSE(stats.timed_out);
}

TEST_F(EnumeratorTest, EveryOrderMethodYieldsSameCount) {
  OrderInputs inputs;
  inputs.candidates = &filtered_.candidates;
  for (const OrderMethod method :
       {OrderMethod::kQuickSI, OrderMethod::kGraphQL, OrderMethod::kCFL,
        OrderMethod::kCECI, OrderMethod::kDPiso, OrderMethod::kRI,
        OrderMethod::kVF2pp}) {
    const auto order = ComputeOrder(method, query_, data_, inputs);
    EnumerateOptions options;
    const EnumerateStats stats = Enumerate(
        query_, data_, filtered_.candidates, &aux_, order, options);
    EXPECT_EQ(stats.match_count, 2u) << OrderMethodName(method);
  }
}

TEST_F(EnumeratorTest, Vf2ppLookaheadPreservesCounts) {
  EnumerateOptions options;
  options.lc_method = LocalCandidateMethod::kNeighborScan;
  options.restrict_neighbor_scan_to_candidates = true;
  options.vf2pp_lookahead = true;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
}

}  // namespace
}  // namespace sgm
