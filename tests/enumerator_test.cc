#include "sgm/core/enumerate/enumerator.h"

#include <gtest/gtest.h>

#include "sgm/core/filter/filter.h"
#include "sgm/core/order/order.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest()
      : query_(PaperQuery()),
        data_(PaperData()),
        filtered_(RunFilter(FilterMethod::kGraphQL, query_, data_)),
        aux_(AuxStructure::BuildAllEdges(query_, data_,
                                         filtered_.candidates)),
        order_(GraphQlOrder(query_, filtered_.candidates)) {}

  EnumerateStats Run(EnumerateOptions options) {
    return Enumerate(query_, data_, filtered_.candidates, &aux_, order_,
                     options);
  }

  Graph query_;
  Graph data_;
  FilterResult filtered_;
  AuxStructure aux_;
  std::vector<Vertex> order_;
};

TEST_F(EnumeratorTest, AllLocalCandidateMethodsAgree) {
  for (const LocalCandidateMethod method :
       {LocalCandidateMethod::kNeighborScan,
        LocalCandidateMethod::kCandidateScan,
        LocalCandidateMethod::kPivotIndex,
        LocalCandidateMethod::kIntersect}) {
    EnumerateOptions options;
    options.lc_method = method;
    options.restrict_neighbor_scan_to_candidates = true;
    const EnumerateStats stats = Run(options);
    EXPECT_EQ(stats.match_count, 2u) << LocalCandidateMethodName(method);
    EXPECT_FALSE(stats.timed_out);
    EXPECT_GT(stats.recursion_calls, 0u);
  }
}

TEST_F(EnumeratorTest, AllIntersectionKernelsAgree) {
  for (const IntersectionMethod kernel :
       {IntersectionMethod::kMerge, IntersectionMethod::kGalloping,
        IntersectionMethod::kHybrid, IntersectionMethod::kQFilter}) {
    EnumerateOptions options;
    options.intersection = kernel;
    const EnumerateStats stats = Run(options);
    EXPECT_EQ(stats.match_count, 2u) << IntersectionMethodName(kernel);
  }
}

TEST_F(EnumeratorTest, FailingSetsPreserveCounts) {
  EnumerateOptions options;
  options.use_failing_sets = true;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
}

TEST_F(EnumeratorTest, MatchLimitStopsEarly) {
  EnumerateOptions options;
  options.max_matches = 1;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 1u);
  EXPECT_TRUE(stats.reached_match_limit);
}

TEST_F(EnumeratorTest, CallbackCanStopEnumeration) {
  EnumerateOptions options;
  uint64_t seen = 0;
  const EnumerateStats stats =
      Enumerate(query_, data_, filtered_.candidates, &aux_, order_, options,
                nullptr, [&](std::span<const Vertex>) {
                  ++seen;
                  return false;  // stop after the first match
                });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(stats.match_count, 1u);
}

TEST_F(EnumeratorTest, StatsTrackLocalCandidates) {
  EnumerateOptions options;
  const EnumerateStats stats = Run(options);
  EXPECT_GT(stats.local_candidates_scanned, 0u);
  EXPECT_GE(stats.enumeration_ms, 0.0);
}

TEST_F(EnumeratorTest, UnlimitedSettingsFindAll) {
  EnumerateOptions options;
  options.max_matches = 0;
  options.time_limit_ms = 0;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
  EXPECT_FALSE(stats.reached_match_limit);
  EXPECT_FALSE(stats.timed_out);
}

TEST_F(EnumeratorTest, EveryOrderMethodYieldsSameCount) {
  OrderInputs inputs;
  inputs.candidates = &filtered_.candidates;
  for (const OrderMethod method :
       {OrderMethod::kQuickSI, OrderMethod::kGraphQL, OrderMethod::kCFL,
        OrderMethod::kCECI, OrderMethod::kDPiso, OrderMethod::kRI,
        OrderMethod::kVF2pp}) {
    const auto order = ComputeOrder(method, query_, data_, inputs);
    EnumerateOptions options;
    const EnumerateStats stats = Enumerate(
        query_, data_, filtered_.candidates, &aux_, order, options);
    EXPECT_EQ(stats.match_count, 2u) << OrderMethodName(method);
  }
}

TEST_F(EnumeratorTest, Vf2ppLookaheadPreservesCounts) {
  EnumerateOptions options;
  options.lc_method = LocalCandidateMethod::kNeighborScan;
  options.restrict_neighbor_scan_to_candidates = true;
  options.vf2pp_lookahead = true;
  const EnumerateStats stats = Run(options);
  EXPECT_EQ(stats.match_count, 2u);
}

}  // namespace
}  // namespace sgm
