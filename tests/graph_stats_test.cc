#include "sgm/graph/graph_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sgm/graph/graph_builder.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;

Graph CompleteGraph(uint32_t n) {
  GraphBuilder builder(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

TEST(GraphStatsTest, TriangleCounts) {
  EXPECT_EQ(CountTriangles(CompleteGraph(3)), 1u);
  EXPECT_EQ(CountTriangles(CompleteGraph(4)), 4u);   // C(4,3)
  EXPECT_EQ(CountTriangles(CompleteGraph(6)), 20u);  // C(6,3)
  // A path has none.
  EXPECT_EQ(CountTriangles(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}})), 0u);
  // Two triangles sharing an edge.
  const Graph bowtie = MakeGraph({0, 0, 0, 0},
                                 {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CountTriangles(bowtie), 2u);
}

TEST(GraphStatsTest, ClusteringOfCompleteGraphIsOne) {
  const GraphStats stats = ComputeGraphStats(CompleteGraph(6));
  EXPECT_DOUBLE_EQ(stats.global_clustering, 1.0);
}

TEST(GraphStatsTest, ClusteringOfTreeIsZero) {
  const Graph star = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  const GraphStats stats = ComputeGraphStats(star);
  EXPECT_DOUBLE_EQ(stats.global_clustering, 0.0);
  EXPECT_EQ(stats.triangle_count, 0u);
}

TEST(GraphStatsTest, LabelHistogramAndEntropy) {
  const Graph graph = MakeGraph({0, 0, 1, 1}, {{0, 1}, {1, 2}, {2, 3}});
  const auto histogram = LabelHistogram(graph);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], 2u);
  EXPECT_EQ(histogram[1], 2u);
  const GraphStats stats = ComputeGraphStats(graph);
  EXPECT_NEAR(stats.label_entropy_bits, 1.0, 1e-12);  // uniform over 2
}

TEST(GraphStatsTest, SingleLabelEntropyIsZero) {
  const GraphStats stats =
      ComputeGraphStats(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}}));
  EXPECT_DOUBLE_EQ(stats.label_entropy_bits, 0.0);
}

TEST(GraphStatsTest, DegreeSummaries) {
  // Star: center degree 4, leaves degree 1.
  const Graph star =
      MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const GraphStats stats = ComputeGraphStats(star);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_EQ(stats.median_degree, 1u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 8.0 / 5.0);
}

TEST(GraphStatsTest, PaperDataStats) {
  const GraphStats stats = ComputeGraphStats(::sgm::testing::PaperData());
  EXPECT_EQ(stats.vertex_count, 13u);
  EXPECT_EQ(stats.edge_count, 17u);
  // Triangles by inspection: {v0,v1,v2}, {v0,v2,v3}, {v0,v4,v5},
  // {v2,v3,v10}, {v4,v5,v12}.
  EXPECT_EQ(stats.triangle_count, 5u);
}

}  // namespace
}  // namespace sgm
