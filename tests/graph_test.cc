#include "sgm/graph/graph.h"

#include <gtest/gtest.h>

#include "sgm/graph/graph_builder.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::MakeGraph;
using ::sgm::testing::PaperData;

TEST(GraphTest, EmptyGraph) {
  Graph graph;
  EXPECT_EQ(graph.vertex_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.label_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.average_degree(), 0.0);
}

TEST(GraphTest, BasicCounts) {
  const Graph graph = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(graph.vertex_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.label_count(), 2u);
  EXPECT_EQ(graph.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(graph.average_degree(), 4.0 / 3.0);
}

TEST(GraphTest, DegreesAndNeighborsSorted) {
  const Graph graph = MakeGraph({0, 0, 0, 0}, {{2, 0}, {3, 0}, {1, 0}});
  EXPECT_EQ(graph.degree(0), 3u);
  EXPECT_EQ(graph.degree(1), 1u);
  const auto nbrs = graph.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, HasEdgeBothDirections) {
  const Graph graph = MakeGraph({0, 0, 0}, {{0, 1}});
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 0));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(2, 1));
}

TEST(GraphTest, LabelIndex) {
  const Graph graph = MakeGraph({1, 0, 1, 0, 1}, {{0, 1}});
  const auto zeros = graph.VerticesWithLabel(0);
  ASSERT_EQ(zeros.size(), 2u);
  EXPECT_EQ(zeros[0], 1u);
  EXPECT_EQ(zeros[1], 3u);
  const auto ones = graph.VerticesWithLabel(1);
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(graph.LabelFrequency(0), 2u);
  EXPECT_EQ(graph.LabelFrequency(1), 3u);
  EXPECT_EQ(graph.max_label_frequency(), 3u);
}

TEST(GraphTest, NeighborLabelFrequency) {
  // v0 has neighbors labeled 1, 1, 2.
  const Graph graph = MakeGraph({0, 1, 1, 2}, {{0, 1}, {0, 2}, {0, 3}});
  const auto nlf = graph.NeighborLabelFrequency(0);
  ASSERT_EQ(nlf.size(), 2u);
  EXPECT_EQ(nlf[0].label, 1u);
  EXPECT_EQ(nlf[0].count, 2u);
  EXPECT_EQ(nlf[1].label, 2u);
  EXPECT_EQ(nlf[1].count, 1u);
  EXPECT_EQ(graph.NeighborCountWithLabel(0, 1), 2u);
  EXPECT_EQ(graph.NeighborCountWithLabel(0, 2), 1u);
  EXPECT_EQ(graph.NeighborCountWithLabel(0, 0), 0u);
  EXPECT_EQ(graph.NeighborCountWithLabel(1, 0), 1u);
}

TEST(GraphTest, PaperDataShape) {
  const Graph data = PaperData();
  EXPECT_EQ(data.vertex_count(), 13u);
  EXPECT_EQ(data.edge_count(), 17u);
  EXPECT_EQ(data.label_count(), 4u);
  EXPECT_EQ(data.degree(0), 6u);
  EXPECT_TRUE(data.HasEdge(4, 12));
  EXPECT_FALSE(data.HasEdge(6, 12));
}

TEST(GraphTest, MemoryBytesNonZero) {
  const Graph data = PaperData();
  EXPECT_GT(data.MemoryBytes(), 0u);
}

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(1, 0));
  EXPECT_EQ(builder.edge_count(), 1u);
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder(2);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  EXPECT_EQ(builder.edge_count(), 0u);
}

TEST(GraphBuilderTest, HasEdgeTracksInsertions) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.HasEdge(0, 2));
  builder.AddEdge(0, 2);
  EXPECT_TRUE(builder.HasEdge(0, 2));
  EXPECT_TRUE(builder.HasEdge(2, 0));
}

TEST(GraphBuilderTest, SetLabelAndBuild) {
  GraphBuilder builder;
  const Vertex a = builder.AddVertex(5);
  const Vertex b = builder.AddVertex(2);
  builder.SetLabel(a, 1);
  builder.AddEdge(a, b);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.label(a), 1u);
  EXPECT_EQ(graph.label(b), 2u);
  EXPECT_EQ(graph.label_count(), 3u);  // labels dense up to max used + 1
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const Graph first = builder.Build();
  builder.AddVertex(0);
  builder.AddEdge(1, 2);
  const Graph second = builder.Build();
  EXPECT_EQ(first.vertex_count(), 2u);
  EXPECT_EQ(second.vertex_count(), 3u);
  EXPECT_EQ(second.edge_count(), 2u);
}

}  // namespace
}  // namespace sgm
