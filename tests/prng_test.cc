#include "sgm/util/prng.h"

#include <gtest/gtest.h>

#include <vector>

namespace sgm {
namespace {

TEST(PrngTest, DeterministicPerSeed) {
  Prng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.NextUint64();
    EXPECT_EQ(x, b.NextUint64());
  }
  // A different seed diverges immediately with overwhelming probability.
  Prng a2(1);
  EXPECT_NE(a2.NextUint64(), c.NextUint64());
}

TEST(PrngTest, BoundedStaysInRange) {
  Prng prng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.NextBounded(7), 7u);
    EXPECT_EQ(prng.NextBounded(1), 0u);
  }
}

TEST(PrngTest, BoundedIsRoughlyUniform) {
  Prng prng(9);
  std::vector<int> histogram(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++histogram[prng.NextBounded(10)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, samples / 10, samples / 100);
  }
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng prng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = prng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(PrngTest, BernoulliMatchesProbability) {
  Prng prng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += prng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(PrngTest, ZeroSeedIsValid) {
  Prng prng(0);
  // xoshiro through splitmix never lands in the all-zero state.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= prng.NextUint64() != 0;
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace sgm
