// Tests of the service telemetry layer (sgm/obs/metrics.h): sharded
// counters, gauges, the log2-bucketed latency histogram (bucket placement at
// powers-of-two boundaries, percentile error bounds, cross-thread merge),
// the registry's Prometheus text exposition and its JSON snapshot, plus the
// concurrent-recording suite the TSan CI job runs via `ctest -L parallel`.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sgm/obs/json.h"
#include "sgm/obs/metrics.h"

namespace sgm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Json;
using obs::MetricsRegistry;

// ---- Counter / Gauge. ----

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(MetricsTest, RegistryReturnsStablePointersPerSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("c_total", "help", {{"status", "ok"}});
  Counter* b = registry.GetCounter("c_total", "help", {{"status", "ok"}});
  Counter* other = registry.GetCounter("c_total", "help", {{"status", "err"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.size(), 2u);
}

// ---- Histogram bucket placement. ----

// Bucket 0 = {0 µs}, bucket i >= 1 = [2^(i-1), 2^i) µs. Values recorded in
// milliseconds quantize to integral microseconds first.
TEST(HistogramTest, ExactBucketsAtPowerOfTwoBoundaries) {
  Histogram histogram;
  histogram.Record(0.0);     // 0 µs    -> bucket 0
  histogram.Record(0.001);   // 1 µs    -> bucket 1: [1, 2)
  histogram.Record(0.002);   // 2 µs    -> bucket 2: [2, 4)
  histogram.Record(0.003);   // 3 µs    -> bucket 2
  histogram.Record(0.004);   // 4 µs    -> bucket 3: [4, 8)
  histogram.Record(0.007);   // 7 µs    -> bucket 3
  histogram.Record(0.008);   // 8 µs    -> bucket 4: [8, 16)
  histogram.Record(1.024);   // 1024 µs -> bucket 11: [1024, 2048)
  histogram.Record(1.023);   // 1023 µs -> bucket 10: [512, 1024)
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(3), 2u);
  EXPECT_EQ(histogram.BucketCount(4), 1u);
  EXPECT_EQ(histogram.BucketCount(10), 1u);
  EXPECT_EQ(histogram.BucketCount(11), 1u);
  EXPECT_EQ(histogram.Count(), 9u);
}

TEST(HistogramTest, NegativeAndHugeValuesClampToEdgeBuckets) {
  Histogram histogram;
  histogram.Record(-5.0);  // clamps to bucket 0
  histogram.Record(1e18);  // beyond the last finite bucket -> overflow
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e18), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusivePowersOfTwoMinusOne) {
  // Bucket i's inclusive upper bound is (2^i - 1) µs: exact because every
  // observation is an integral number of microseconds.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(1), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(2), 0.003);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(11), 2.047);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperMs(Histogram::kBuckets - 1)));
}

// ---- Percentile estimation. ----

// The estimate always lies inside the bucket holding the true order
// statistic, so its error is bounded by that bucket's width.
TEST(HistogramTest, PercentileErrorBoundedByBucketWidth) {
  Histogram histogram;
  // 1000 observations uniform over [1, 1000] ms (integral).
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    // True order statistic of the 1..1000 sequence.
    const double truth = std::ceil(q * 1000.0);
    const size_t bucket = Histogram::BucketIndex(truth);
    const double lo_ms =
        bucket == 0
            ? 0.0
            : static_cast<double>(uint64_t{1} << (bucket - 1)) * 1e-3;
    const double hi_ms = static_cast<double>(uint64_t{1} << bucket) * 1e-3;
    const double width = hi_ms - lo_ms;
    const double estimate = histogram.Percentile(q);
    EXPECT_NEAR(estimate, truth, width)
        << "q=" << q << " truth=" << truth << " bucket=" << bucket;
    // And the estimate itself stays within the bucket's range.
    EXPECT_GE(estimate, lo_ms);
    EXPECT_LE(estimate, hi_ms);
  }
}

TEST(HistogramTest, PercentileOfSingleValueLandsInItsBucket) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(5.0);  // 5000 µs: [4096, 8192)
  const double p50 = histogram.Percentile(0.5);
  EXPECT_GE(p50, 4.096);
  EXPECT_LE(p50, 8.192);
}

TEST(HistogramTest, EmptyPercentileIsNaN) {
  Histogram histogram;
  EXPECT_TRUE(std::isnan(histogram.Percentile(0.5)));
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.SumMs(), 0.0);
}

TEST(HistogramTest, SumTracksRecordedValues) {
  Histogram histogram;
  histogram.Record(1.5);
  histogram.Record(2.25);
  EXPECT_NEAR(histogram.SumMs(), 3.75, 1e-9);
}

// ---- JSON snapshot. ----

TEST(MetricsTest, EmptyHistogramPercentilesSerializeAsNull) {
  MetricsRegistry registry;
  registry.GetHistogram("h_ms", "an empty histogram");
  const std::string dumped = registry.ToJson().Dump(0);
  EXPECT_NE(dumped.find("\"p50_ms\":null"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"p999_ms\":null"), std::string::npos) << dumped;
  // The snapshot must stay parseable by the obs JSON parser.
  std::string error;
  ASSERT_TRUE(Json::Parse(dumped, &error).has_value()) << error;
}

TEST(MetricsTest, JsonSnapshotRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "requests", {{"status", "ok"}})
      ->Increment(3);
  registry.GetGauge("depth", "queue depth")->Set(2);
  Histogram* histogram = registry.GetHistogram("latency_ms", "latency");
  histogram->Record(0.5);
  histogram->Record(12.0);

  const std::string dumped = registry.ToJson().Dump(2);
  std::string error;
  const std::optional<Json> parsed = Json::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Dump(2), dumped);

  const Json* counters = parsed->Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  EXPECT_EQ(counters->at(0).GetUint64("value"), 3u);
  EXPECT_EQ(counters->at(0).GetString("name"), "requests_total");
  const Json* histograms = parsed->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->size(), 1u);
  EXPECT_EQ(histograms->at(0).GetUint64("count"), 2u);
}

// ---- Prometheus exposition. ----

// Minimal structural validator for the text exposition format 0.0.4: every
// series is preceded by its family's HELP/TYPE pair, histogram bucket
// counts are cumulative and non-decreasing, and the +Inf bucket equals the
// series count.
void ValidatePrometheus(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::map<std::string, std::string> family_type;
  std::string last_help_family;
  std::map<std::string, std::vector<double>> bucket_counts;
  std::map<std::string, double> series_count;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      last_help_family = rest.substr(0, space);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string family = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      EXPECT_EQ(family, last_help_family) << "TYPE without preceding HELP";
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      family_type[family] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    // Sample line: name{labels} value | name value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value_text = line.substr(space + 1);
    std::string series = line.substr(0, space);
    const double value = std::strtod(value_text.c_str(), nullptr);
    std::string name = series.substr(0, series.find('{'));
    // Histogram expansions attach to their family name.
    std::string family = name;
    for (const std::string suffix : {"_bucket", "_sum", "_count"}) {
      if (family_type.count(family) == 0 && name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        family = name.substr(0, name.size() - suffix.size());
      }
    }
    ASSERT_EQ(family_type.count(family), 1u)
        << "series " << name << " has no TYPE header";
    if (family_type[family] == "histogram") {
      // Strip the le label to group buckets of one series.
      const size_t le = series.find("le=\"");
      if (name.size() > 7 &&
          name.compare(name.size() - 7, 7, "_bucket") == 0) {
        ASSERT_NE(le, std::string::npos) << line;
        const size_t le_end = series.find('"', le + 4);
        std::string key = series.substr(0, le) + series.substr(le_end + 1);
        bucket_counts[key].push_back(value);
        if (series.substr(le + 4, le_end - le - 4) == "+Inf") {
          series_count[key + "|inf"] = value;
        }
      } else if (name.size() > 6 &&
                 name.compare(name.size() - 6, 6, "_count") == 0) {
        series_count[series + "|count"] = value;
      }
    } else if (family_type[family] == "counter") {
      EXPECT_GE(value, 0.0) << line;
    }
  }
  for (const auto& [key, counts] : bucket_counts) {
    for (size_t i = 1; i < counts.size(); ++i) {
      EXPECT_GE(counts[i], counts[i - 1])
          << "bucket counts not cumulative for " << key;
    }
  }
  // Every histogram's +Inf bucket equals its _count.
  for (const auto& [key, value] : series_count) {
    if (key.size() > 4 && key.compare(key.size() - 4, 4, "|inf") == 0) {
      const std::string stem = key.substr(0, key.size() - 4);
      // stem is "name_bucket{labels-without-le}"; rebuild "name_count{...}".
      const size_t bucket_pos = stem.find("_bucket");
      ASSERT_NE(bucket_pos, std::string::npos);
      std::string count_key = stem.substr(0, bucket_pos) + "_count" +
                              stem.substr(bucket_pos + 7) + "|count";
      // Drop a dangling "{}" left by stripping the only label.
      const size_t empty_braces = count_key.find("{}");
      if (empty_braces != std::string::npos) {
        count_key.erase(empty_braces, 2);
      }
      ASSERT_EQ(series_count.count(count_key), 1u) << count_key;
      EXPECT_EQ(series_count[count_key], value)
          << "+Inf bucket != count for " << stem;
    }
  }
}

TEST(MetricsTest, PrometheusExpositionIsWellFormed) {
  MetricsRegistry registry;
  const char* help = "requests by status";
  registry.GetCounter("app_requests_total", help, {{"status", "ok"}})
      ->Increment(5);
  registry.GetCounter("app_requests_total", help, {{"status", "error"}})
      ->Increment(1);
  registry.GetGauge("app_queue_depth", "queued requests")->Set(3);
  Histogram* histogram = registry.GetHistogram("app_latency_ms", "latency");
  histogram->Record(0.0);
  histogram->Record(0.75);
  histogram->Record(3.0);
  histogram->Record(250.0);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP app_requests_total requests by status\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE app_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_requests_total{status=\"ok\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("app_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("app_latency_ms_count 4\n"), std::string::npos);
  ValidatePrometheus(text);
}

TEST(MetricsTest, PrometheusEmitsEmptyHistogramWithInfBucket) {
  MetricsRegistry registry;
  registry.GetHistogram("quiet_ms", "never recorded");
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("quiet_ms_bucket{le=\"+Inf\"} 0\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("quiet_ms_count 0\n"), std::string::npos);
  ValidatePrometheus(text);
}

// ---- Merge. ----

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 64; ++i) {
    const double value = static_cast<double>(i) * 0.37;
    (i % 2 == 0 ? a : b).Record(value);
    combined.Record(value);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_DOUBLE_EQ(a.SumMs(), combined.SumMs());
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.BucketCount(i), combined.BucketCount(i)) << "bucket " << i;
  }
}

// ---- Concurrency (runs under TSan via `ctest -L parallel`). ----

TEST(MetricsConcurrencyTest, ShardedCounterSumsAllThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsConcurrencyTest, ConcurrentHistogramRecordingLosesNothing) {
  MetricsRegistry registry;
  Histogram* shared = registry.GetHistogram("latency_ms", "latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([shared, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shared->Record(static_cast<double>((t * kPerThread + i) % 97));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared->Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Per-thread local histograms merged afterwards see the identical
  // distribution — the documented cross-thread aggregation pattern.
  Histogram merged;
  std::vector<std::unique_ptr<Histogram>> locals;
  for (int t = 0; t < kThreads; ++t) {
    locals.push_back(std::make_unique<Histogram>());
  }
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&locals, t] {
      for (int i = 0; i < kPerThread; ++i) {
        locals[t]->Record(static_cast<double>((t * kPerThread + i) % 97));
      }
    });
  }
  for (std::thread& thread : recorders) thread.join();
  for (const auto& local : locals) merged.Merge(*local);
  EXPECT_EQ(merged.Count(), shared->Count());
  EXPECT_DOUBLE_EQ(merged.SumMs(), shared->SumMs());
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.BucketCount(i), shared->BucketCount(i));
  }
}

TEST(MetricsConcurrencyTest, RegistrationRacesResolveToOneSeries) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* counter =
          registry.GetCounter("raced_total", "raced", {{"k", "v"}});
      counter->Increment();
      seen[t] = counter;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace sgm
