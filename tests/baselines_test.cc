#include <gtest/gtest.h>

#include "sgm/baselines/ullmann.h"
#include "sgm/baselines/vf2.h"
#include "sgm/core/brute_force.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/query_generator.h"
#include "test_support.h"

namespace sgm {
namespace {

using ::sgm::testing::PaperData;
using ::sgm::testing::PaperQuery;

TEST(UllmannTest, PaperExample) {
  const UllmannResult result = UllmannMatch(PaperQuery(), PaperData());
  EXPECT_EQ(result.match_count, 2u);
  EXPECT_GT(result.search_nodes, 0u);
  EXPECT_GT(result.refinements, 0u);
  EXPECT_FALSE(result.timed_out);
}

TEST(Vf2Test, PaperExample) {
  const Vf2Result result = Vf2Match(PaperQuery(), PaperData());
  EXPECT_EQ(result.match_count, 2u);
  EXPECT_FALSE(result.timed_out);
}

TEST(BaselinesTest, AgreeWithBruteForceOnRandomInputs) {
  Prng prng(31337);
  for (int round = 0; round < 8; ++round) {
    const Graph data = GenerateErdosRenyi(
        30, 90 + static_cast<uint32_t>(prng.NextBounded(60)),
        1 + static_cast<uint32_t>(prng.NextBounded(3)), &prng);
    const auto query = ExtractQuery(
        data, 4 + static_cast<uint32_t>(prng.NextBounded(2)),
        QueryDensity::kAny, &prng);
    if (!query.has_value()) continue;
    const uint64_t expected = BruteForceCount(*query, data);

    UllmannOptions ullmann_options;
    ullmann_options.max_matches = 0;
    EXPECT_EQ(UllmannMatch(*query, data, ullmann_options).match_count,
              expected)
        << "Ullmann round " << round;

    Vf2Options vf2_options;
    vf2_options.max_matches = 0;
    EXPECT_EQ(Vf2Match(*query, data, vf2_options).match_count, expected)
        << "VF2 round " << round;
  }
}

TEST(UllmannTest, MatchLimitAndCallback) {
  Prng prng(99);
  const Graph data = GenerateErdosRenyi(40, 200, 1, &prng);
  const Graph query = ::sgm::testing::TriangleQuery();
  UllmannOptions options;
  options.max_matches = 3;
  const UllmannResult result = UllmannMatch(query, data, options);
  EXPECT_LE(result.match_count, 3u);

  uint64_t seen = 0;
  UllmannMatch(query, data, UllmannOptions{},
               [&](std::span<const Vertex> mapping) {
                 EXPECT_EQ(mapping.size(), 3u);
                 ++seen;
                 return false;
               });
  EXPECT_EQ(seen, 1u);
}

TEST(Vf2Test, EmbeddingsAreValid) {
  const Graph query = PaperQuery();
  const Graph data = PaperData();
  Vf2Match(query, data, Vf2Options{}, [&](std::span<const Vertex> mapping) {
    for (Vertex u = 0; u < query.vertex_count(); ++u) {
      EXPECT_EQ(query.label(u), data.label(mapping[u]));
      for (const Vertex w : query.neighbors(u)) {
        EXPECT_TRUE(data.HasEdge(mapping[u], mapping[w]));
      }
    }
    return true;
  });
}

TEST(Vf2Test, FindsNonInducedEmbeddings) {
  // Path query inside a triangle: an induced-only matcher would reject the
  // extra edge; the paper's problem (Definition 2.1) accepts it.
  const Graph query =
      ::sgm::testing::MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  const Graph data =
      ::sgm::testing::MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Vf2Options options;
  options.max_matches = 0;
  EXPECT_EQ(Vf2Match(query, data, options).match_count, 6u);
  UllmannOptions ullmann_options;
  ullmann_options.max_matches = 0;
  EXPECT_EQ(UllmannMatch(query, data, ullmann_options).match_count, 6u);
}

}  // namespace
}  // namespace sgm
