// Figure 14: spectrum analysis — the distribution of enumeration times over
// randomly sampled matching orders for selected dense and sparse queries,
// compared with the orders GQL and RI generate.
#include <algorithm>

#include "report.h"
#include "runner.h"
#include "sgm/core/spectrum.h"

namespace sgm::bench {
namespace {

double EnumerationMsOf(Algorithm algorithm, const Graph& query,
                       const Graph& data, const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  const MatchResult result = MatchQuery(query, data, options);
  return result.unsolved() ? config.time_limit_ms : result.enumeration_ms;
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 14",
              "Spectrum analysis: random matching orders vs GQL and RI",
              config);

  const uint32_t num_orders = config.full_scale ? 1000 : 100;
  for (const char* code : {"yt", "hu"}) {
    const DatasetSpec spec = AnalogByCode(code, config.full_scale);
    const Graph data = BuildDataset(spec, config.seed);
    const uint32_t size = DefaultQuerySize(spec, config);
    std::printf("\ndataset %s (one dense and one sparse query, |V(q)|=%u,"
                " %u sampled orders)\n",
                code, size, num_orders);
    PrintHeaderRow({"query", "orders-ok", "best", "median", "worst", "GQL",
                    "RI"});
    for (const QueryDensity density :
         {QueryDensity::kDense, QueryDensity::kSparse}) {
      const auto queries = MakeQuerySet(data, size, density, 1, config.seed);
      if (queries.empty()) continue;
      const Graph& query = queries.front();

      SpectrumOptions spectrum_options;
      spectrum_options.num_orders = num_orders;
      spectrum_options.per_order_time_limit_ms = config.time_limit_ms / 5.0;
      spectrum_options.max_matches = config.max_matches;
      Prng prng(config.seed + 99);
      const SpectrumResult spectrum =
          RunSpectrum(query, data, spectrum_options, &prng);

      std::vector<double> times = spectrum.completed_times_ms;
      std::sort(times.begin(), times.end());
      const double median =
          times.empty() ? 0.0 : times[times.size() / 2];
      PrintRow({std::string("q_") +
                    (density == QueryDensity::kDense ? "dense" : "sparse"),
                FormatCount(spectrum.completed),
                FormatDouble(spectrum.best_ms),
                FormatDouble(median),
                FormatDouble(spectrum.worst_completed_ms),
                FormatDouble(
                    EnumerationMsOf(Algorithm::kGraphQL, query, data, config)),
                FormatDouble(
                    EnumerationMsOf(Algorithm::kRI, query, data, config))});
    }
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
