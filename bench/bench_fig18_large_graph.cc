// Figure 18: the friendster experiment — the largest graph in the paper
// (124M vertices / 1.8B edges), substituted by the largest RMAT analog this
// machine accommodates (see DESIGN.md). The protocol is the paper's: vary
// the density by randomly keeping 40/60/80/100% of the edges, and vary |Σ|
// over {64, 96, 128, 160}; report the mean query time of GQLfs and RIfs on
// Q16D.
// The sharded section (c) departs from the paper: it measures the sharded
// executor (DESIGN.md §13) on a community-structured analog — per-shard
// auxiliary-memory peak and end-to-end throughput against the monolithic
// run, with exact count equality checked per query — and writes
// BENCH_sharding.json for the CI regression guard.
#include <algorithm>
#include <cstdio>

#include "report.h"
#include "runner.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/obs/json.h"
#include "sgm/plan.h"
#include "sgm/shard/sharded_graph.h"
#include "sgm/util/timer.h"

namespace sgm::bench {
namespace {

MatchOptions Configured(Algorithm algorithm, const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.use_failing_sets = true;
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

void Report(const Graph& data, const BenchConfig& config,
            const std::string& label) {
  const auto queries = MakeQuerySet(data, 16, QueryDensity::kDense,
                                    std::min(config.queries_per_set, 10u),
                                    config.seed);
  if (queries.empty()) {
    PrintRow({label, "-", "-"});
    return;
  }
  PrintRow({label,
            FormatDouble(RunQuerySet(data, queries,
                                     Configured(Algorithm::kGraphQL, config))
                             .total_ms.mean()),
            FormatDouble(RunQuerySet(data, queries,
                                     Configured(Algorithm::kRI, config))
                             .total_ms.mean())});
}

// Community-structured data graph for the sharded experiment: `communities`
// dense Erdős–Rényi blocks joined by a small number of cross edges. The
// shape mirrors the workloads sharding targets (social/web graphs with
// locality): a greedy edge-cut partitioner recovers the blocks, so the cut
// — and with it the boundary region — stays small.
Graph MakeCommunityGraph(uint32_t vertices, uint32_t communities,
                         uint32_t intra_edges, uint32_t cross_edges,
                         uint32_t labels, Prng* prng) {
  GraphBuilder builder;
  for (uint32_t v = 0; v < vertices; ++v) {
    builder.AddVertex(static_cast<Label>(prng->NextBounded(labels)));
  }
  const uint32_t block = vertices / communities;
  uint32_t added = 0;
  while (added < intra_edges) {
    const uint32_t c = static_cast<uint32_t>(prng->NextBounded(communities));
    const Vertex base = c * block;
    const auto u = static_cast<Vertex>(base + prng->NextBounded(block));
    const auto v = static_cast<Vertex>(base + prng->NextBounded(block));
    if (builder.AddEdge(u, v)) ++added;
  }
  added = 0;
  while (added < cross_edges) {
    const uint32_t c1 = static_cast<uint32_t>(prng->NextBounded(communities));
    const uint32_t c2 = static_cast<uint32_t>(prng->NextBounded(communities));
    if (c1 == c2) continue;
    const auto u = static_cast<Vertex>(c1 * block + prng->NextBounded(block));
    const auto v = static_cast<Vertex>(c2 * block + prng->NextBounded(block));
    if (builder.AddEdge(u, v)) ++added;
  }
  return builder.Build();
}

// Ego-net queries for the sharded experiment: a random center plus five of
// its neighbors, induced. Embeddings exist by construction, and every query
// edge touches the center, so the boundary pass's cut region (radius = the
// query's worst edge eccentricity, here 1) stays a small fraction of the
// data graph — the regime sharding is built for. Six vertices keep the
// enumeration heavy enough that the per-pass plan-build overhead of the
// sharded path amortizes.
std::vector<Graph> MakeEgoQueries(const Graph& data, uint32_t count,
                                  Prng* prng) {
  std::vector<Graph> queries;
  for (int attempt = 0; attempt < 1000 && queries.size() < count; ++attempt) {
    const auto center =
        static_cast<Vertex>(prng->NextBounded(data.vertex_count()));
    const auto neighbors = data.neighbors(center);
    if (neighbors.size() < 5) continue;
    std::vector<Vertex> picked = {center};
    while (picked.size() < 6) {
      const Vertex v = neighbors[prng->NextBounded(neighbors.size())];
      if (std::find(picked.begin(), picked.end(), v) == picked.end()) {
        picked.push_back(v);
      }
    }
    std::sort(picked.begin(), picked.end());
    queries.push_back(InducedSubgraph(data, picked));
  }
  return queries;
}

void RunShardedSection(const BenchConfig& config) {
  std::printf("\n(c) sharded execution (community analog, greedy partition)\n");

  const uint32_t vertices = config.full_scale ? 600000 : 60000;
  const uint32_t intra_edges = config.full_scale ? 2400000 : 240000;
  const uint32_t cross_edges = config.full_scale ? 480 : 48;
  constexpr uint32_t kCommunities = 8;
  // A small alphabet keeps candidate sets large (|V|/|Σ| per query vertex),
  // so the auxiliary structures that the per-shard memory criterion tracks
  // are dominated by candidates — which scale with shard size — rather
  // than by fixed per-pass overhead, and enumeration is heavy enough to
  // amortize the sharded path's per-pass plan builds.
  constexpr uint32_t kLabels = 4;
  Prng prng(config.seed + 180);
  const Graph data = MakeCommunityGraph(vertices, kCommunities, intra_edges,
                                        cross_edges, kLabels, &prng);
  std::printf("community analog: |V|=%u |E|=%u |Sigma|=%u communities=%u"
              " cross-edges=%u\n",
              data.vertex_count(), data.edge_count(), kLabels, kCommunities,
              cross_edges);

  Prng query_prng(config.seed + 181);
  const auto queries = MakeEgoQueries(
      data, std::min(config.queries_per_set, 10u), &query_prng);
  if (queries.empty()) {
    std::printf("no queries extracted; skipping sharded section\n");
    return;
  }
  const MatchOptions options = Configured(Algorithm::kGraphQL, config);

  // Monolithic reference: per-query counts, total wall time, aux bytes.
  // One untimed warmup loop first — both configurations are measured in
  // steady state (the sharded executor caches the cut region per radius;
  // the warmup also settles the allocator).
  std::vector<uint64_t> mono_counts;
  double mono_wall_ms = 0.0;
  uint64_t mono_aux_sum = 0;
  for (const Graph& query : queries) MatchQuery(query, data, options);
  {
    Timer wall;
    for (const Graph& query : queries) {
      const MatchResult result = MatchQuery(query, data, options);
      mono_counts.push_back(result.match_count);
      mono_aux_sum += result.aux_memory_bytes;
    }
    mono_wall_ms = wall.ElapsedMillis();
  }
  const double mono_qps =
      mono_wall_ms > 0.0
          ? 1000.0 * static_cast<double>(queries.size()) / mono_wall_ms
          : 0.0;

  PrintHeaderRow({"config", "wall-ms", "rel-qps", "max-aux/mono", "cut",
                  "region", "exact", "build-ms", "enum-ms"});
  PrintRow({"mono", FormatDouble(mono_wall_ms), "1.00", "1.00", "-", "-",
            "yes"});

  obs::Json series = obs::Json::Array();
  for (const uint32_t shards : {2u, 4u, 8u}) {
    Timer partition_timer;
    const shard::ShardedGraph sharded(data, shards,
                                      shard::Partitioner::kGreedy);
    const double partition_ms = partition_timer.ElapsedMillis();

    bool exact = true;
    uint64_t max_aux_sum = 0;  // sum over queries of the per-shard aux peak
    uint64_t boundary_aux_sum = 0;
    uint32_t region_vertices = 0;
    double build_ms_sum = 0.0, enumerate_ms_sum = 0.0;
    for (const Graph& query : queries) {
      ShardedMatchQuery(query, sharded, options);  // untimed warmup
    }
    Timer wall;
    for (size_t i = 0; i < queries.size(); ++i) {
      const ShardedMatchResult result =
          ShardedMatchQuery(queries[i], sharded, options);
      if (result.result.match_count != mono_counts[i]) exact = false;
      uint64_t max_aux = 0;
      for (const ShardPassStats& pass : result.sharding.passes) {
        build_ms_sum += pass.build_ms;
        enumerate_ms_sum += pass.enumerate_ms;
        if (pass.boundary) {
          boundary_aux_sum += pass.aux_memory_bytes;
        } else {
          max_aux = std::max<uint64_t>(max_aux, pass.aux_memory_bytes);
        }
      }
      max_aux_sum += max_aux;
      region_vertices =
          std::max(region_vertices, result.sharding.region_vertices);
    }
    const double wall_ms = wall.ElapsedMillis();
    const double rel_qps = wall_ms > 0.0 ? mono_wall_ms / wall_ms : 0.0;
    const double aux_ratio =
        mono_aux_sum > 0 ? static_cast<double>(max_aux_sum) /
                               static_cast<double>(mono_aux_sum)
                         : 0.0;
    PrintRow({"K=" + FormatCount(shards), FormatDouble(wall_ms),
              FormatDouble(rel_qps), FormatDouble(aux_ratio),
              FormatCount(sharded.partition().cut_edges),
              FormatCount(region_vertices), exact ? "yes" : "NO",
              FormatDouble(build_ms_sum), FormatDouble(enumerate_ms_sum)});

    obs::Json entry = obs::Json::Object();
    entry.Set("shards", obs::Json::Number(uint64_t{shards}));
    entry.Set("partitioner", obs::Json::String("greedy"));
    entry.Set("partition_ms", obs::Json::Number(partition_ms));
    entry.Set("cut_edges",
              obs::Json::Number(sharded.partition().cut_edges));
    entry.Set("region_vertices", obs::Json::Number(uint64_t{region_vertices}));
    entry.Set("wall_ms", obs::Json::Number(wall_ms));
    entry.Set("throughput_qps",
              obs::Json::Number(
                  wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries.size()) /
                                      wall_ms
                                : 0.0));
    entry.Set("relative_throughput", obs::Json::Number(rel_qps));
    entry.Set("max_shard_aux_bytes", obs::Json::Number(max_aux_sum));
    entry.Set("boundary_aux_bytes", obs::Json::Number(boundary_aux_sum));
    entry.Set("aux_ratio_vs_mono", obs::Json::Number(aux_ratio));
    entry.Set("counts_identical", obs::Json::Bool(exact));
    series.Append(std::move(entry));
  }

  obs::Json root = obs::Json::Object();
  root.Set("bench", obs::Json::String("fig18_sharding"));
  root.Set("seed", obs::Json::Number(config.seed));
  obs::Json graph_json = obs::Json::Object();
  graph_json.Set("vertices", obs::Json::Number(uint64_t{data.vertex_count()}));
  graph_json.Set("edges", obs::Json::Number(uint64_t{data.edge_count()}));
  graph_json.Set("labels", obs::Json::Number(uint64_t{kLabels}));
  graph_json.Set("communities", obs::Json::Number(uint64_t{kCommunities}));
  graph_json.Set("cross_edges", obs::Json::Number(uint64_t{cross_edges}));
  root.Set("graph", std::move(graph_json));
  root.Set("queries", obs::Json::Number(uint64_t{queries.size()}));
  obs::Json mono_json = obs::Json::Object();
  mono_json.Set("wall_ms", obs::Json::Number(mono_wall_ms));
  mono_json.Set("throughput_qps", obs::Json::Number(mono_qps));
  mono_json.Set("aux_bytes", obs::Json::Number(mono_aux_sum));
  root.Set("mono", std::move(mono_json));
  root.Set("sharded", std::move(series));

  std::FILE* json = std::fopen("BENCH_sharding.json", "w");
  if (json == nullptr) {
    std::printf("could not open BENCH_sharding.json for writing\n");
    return;
  }
  const std::string text = root.Dump(2);
  std::fwrite(text.data(), 1, text.size(), json);
  std::fputc('\n', json);
  std::fclose(json);
  std::printf("wrote BENCH_sharding.json\n");
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 18",
              "friendster analog (RMAT): mean query time (ms) of GQLfs and"
              " RIfs on Q16D",
              config);

  const uint32_t vertices = config.full_scale ? 2000000 : 200000;
  const uint32_t edges = config.full_scale ? 30000000 : 2000000;
  std::printf("analog: |V|=%u |E|=%u (paper: 124M/1.8B; see DESIGN.md)\n",
              vertices, edges);

  Prng prng(config.seed + 18);
  const Graph base = GenerateRmat(vertices, edges, 64, &prng);

  std::printf("\n(a) vary density (|Σ|=64)\n");
  PrintHeaderRow({"edges-kept", "GQLfs", "RIfs"});
  for (const double ratio : {0.4, 0.6, 0.8, 1.0}) {
    Prng sample_prng(config.seed + static_cast<uint64_t>(ratio * 100));
    const Graph data =
        ratio < 1.0 ? SampleEdges(base, ratio, &sample_prng) : base;
    Report(data, config, FormatDouble(ratio * 100, 0) + "%");
  }

  std::printf("\n(b) vary |Σ| (all edges)\n");
  PrintHeaderRow({"|Sigma|", "GQLfs", "RIfs"});
  for (const uint32_t labels : {64u, 96u, 128u, 160u}) {
    Prng relabel_prng(config.seed + labels);
    const Graph data = RelabelUniform(base, labels, &relabel_prng);
    Report(data, config, FormatCount(labels));
  }

  RunShardedSection(config);
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
