// Figure 18: the friendster experiment — the largest graph in the paper
// (124M vertices / 1.8B edges), substituted by the largest RMAT analog this
// machine accommodates (see DESIGN.md). The protocol is the paper's: vary
// the density by randomly keeping 40/60/80/100% of the edges, and vary |Σ|
// over {64, 96, 128, 160}; report the mean query time of GQLfs and RIfs on
// Q16D.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

MatchOptions Configured(Algorithm algorithm, const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.use_failing_sets = true;
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

void Report(const Graph& data, const BenchConfig& config,
            const std::string& label) {
  const auto queries = MakeQuerySet(data, 16, QueryDensity::kDense,
                                    std::min(config.queries_per_set, 10u),
                                    config.seed);
  if (queries.empty()) {
    PrintRow({label, "-", "-"});
    return;
  }
  PrintRow({label,
            FormatDouble(RunQuerySet(data, queries,
                                     Configured(Algorithm::kGraphQL, config))
                             .total_ms.mean()),
            FormatDouble(RunQuerySet(data, queries,
                                     Configured(Algorithm::kRI, config))
                             .total_ms.mean())});
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 18",
              "friendster analog (RMAT): mean query time (ms) of GQLfs and"
              " RIfs on Q16D",
              config);

  const uint32_t vertices = config.full_scale ? 2000000 : 200000;
  const uint32_t edges = config.full_scale ? 30000000 : 2000000;
  std::printf("analog: |V|=%u |E|=%u (paper: 124M/1.8B; see DESIGN.md)\n",
              vertices, edges);

  Prng prng(config.seed + 18);
  const Graph base = GenerateRmat(vertices, edges, 64, &prng);

  std::printf("\n(a) vary density (|Σ|=64)\n");
  PrintHeaderRow({"edges-kept", "GQLfs", "RIfs"});
  for (const double ratio : {0.4, 0.6, 0.8, 1.0}) {
    Prng sample_prng(config.seed + static_cast<uint64_t>(ratio * 100));
    const Graph data =
        ratio < 1.0 ? SampleEdges(base, ratio, &sample_prng) : base;
    Report(data, config, FormatDouble(ratio * 100, 0) + "%");
  }

  std::printf("\n(b) vary |Σ| (all edges)\n");
  PrintHeaderRow({"|Sigma|", "GQLfs", "RIfs"});
  for (const uint32_t labels : {64u, 96u, 128u, 160u}) {
    Prng relabel_prng(config.seed + labels);
    const Graph data = RelabelUniform(base, labels, &relabel_prng);
    Report(data, config, FormatCount(labels));
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
