// Table 3: properties of the real-world datasets. Prints the synthetic
// analogs actually used by this harness next to the paper's numbers so the
// scale substitution is auditable (see DESIGN.md).
#include "report.h"

namespace sgm::bench {
namespace {

struct PaperRow {
  const char* code;
  uint32_t vertices;
  uint32_t edges;
  uint32_t labels;
  double degree;
};

constexpr PaperRow kPaperRows[] = {
    {"ye", 3112, 12519, 71, 8.0},        {"hu", 4674, 86282, 44, 36.9},
    {"hp", 9460, 34998, 307, 7.4},       {"wn", 76853, 120399, 5, 3.1},
    {"up", 3774768, 16518947, 20, 8.8},  {"yt", 1134890, 2987624, 25, 5.3},
    {"db", 317080, 1049866, 15, 6.6},    {"eu", 862664, 16138468, 40, 37.4},
};

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Table 3", "Properties of the dataset analogs vs the paper",
              config);
  PrintHeaderRow({"dataset", "|V|", "|E|", "|Sigma|", "d", "paper-|V|",
                  "paper-|E|", "paper-d"});
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaperRows) {
      if (spec.code == row.code) paper = &row;
    }
    PrintRow({spec.code, FormatCount(data.vertex_count()),
              FormatCount(data.edge_count()), FormatCount(data.label_count()),
              FormatDouble(data.average_degree(), 1),
              paper ? FormatCount(paper->vertices) : "-",
              paper ? FormatCount(paper->edges) : "-",
              paper ? FormatDouble(paper->degree, 1) : "-"});
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
