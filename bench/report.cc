#include "report.h"

#include <cinttypes>
#include <cstdio>

namespace sgm::bench {

namespace {
constexpr int kColumnWidth = 12;
}  // namespace

void PrintBanner(const std::string& experiment_id,
                 const std::string& description, const BenchConfig& config) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("scale=%s seed=%" PRIu64 " queries/set=%u time-limit=%.0fms max-matches=%" PRIu64 "\n",
              config.full_scale ? "paper(full)" : "scaled", config.seed,
              config.queries_per_set, config.time_limit_ms,
              config.max_matches);
  std::printf("================================================================\n");
}

void PrintHeaderRow(const std::vector<std::string>& columns) {
  for (const std::string& column : columns) {
    std::printf("%-*s", kColumnWidth, column.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kColumnWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", kColumnWidth, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatCount(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

}  // namespace sgm::bench
