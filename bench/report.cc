#include "report.h"

#include <cinttypes>
#include <cstdio>

namespace sgm::bench {

namespace {
constexpr int kColumnWidth = 12;
}  // namespace

void PrintBanner(const std::string& experiment_id,
                 const std::string& description, const BenchConfig& config) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("scale=%s seed=%" PRIu64 " queries/set=%u time-limit=%.0fms max-matches=%" PRIu64 "\n",
              config.full_scale ? "paper(full)" : "scaled", config.seed,
              config.queries_per_set, config.time_limit_ms,
              config.max_matches);
  std::printf("================================================================\n");
}

void PrintHeaderRow(const std::vector<std::string>& columns) {
  for (const std::string& column : columns) {
    std::printf("%-*s", kColumnWidth, column.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size() * kColumnWidth; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", kColumnWidth, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatCount(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

bool WriteRunReportsJson(const std::string& path, const std::string& bench_id,
                         const BenchConfig& config,
                         const std::vector<ReportSeries>& series) {
  obs::Json doc = obs::Json::Object();
  doc.Set("bench", obs::Json::String(bench_id));
  doc.Set("seed", obs::Json::Number(config.seed));
  doc.Set("full_scale", obs::Json::Bool(config.full_scale));
  doc.Set("queries_per_set",
          obs::Json::Number(uint64_t{config.queries_per_set}));
  obs::Json series_json = obs::Json::Array();
  for (const ReportSeries& entry : series) {
    obs::Json entry_json = obs::Json::Object();
    entry_json.Set("label", obs::Json::String(entry.label));
    obs::Json reports_json = obs::Json::Array();
    for (const obs::RunReport& report : entry.reports) {
      reports_json.Append(report.ToJson());
    }
    entry_json.Set("run_reports", std::move(reports_json));
    series_json.Append(std::move(entry_json));
  }
  doc.Set("series", std::move(series_json));

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::printf("could not open %s for writing\n", path.c_str());
    return false;
  }
  const std::string text = doc.Dump(2);
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace sgm::bench
