// Figure 8: pruning power of the filtering methods — the average number of
// candidate vertices (1/|V(q)| * sum |C(u)|) of GQL, CFL, CECI and DP-iso,
// bracketed by the LDF baseline (weakest) and the STEADY fixpoint baseline
// (strongest application of Filtering Rule 3.1).
#include "report.h"
#include "sgm/core/filter/filter.h"
#include "sgm/util/stats.h"

namespace sgm::bench {
namespace {

constexpr FilterMethod kMethods[] = {
    FilterMethod::kLDF,  FilterMethod::kGraphQL, FilterMethod::kCFL,
    FilterMethod::kCECI, FilterMethod::kDPiso,   FilterMethod::kSteady,
};

double MeanCandidates(const Graph& data, const std::vector<Graph>& queries,
                      FilterMethod method) {
  RunningStats stats;
  for (const Graph& query : queries) {
    const FilterResult filtered = RunFilter(method, query, data);
    stats.Add(filtered.candidates.AverageCount());
  }
  return stats.mean();
}

std::vector<std::string> HeaderColumns(const std::string& first) {
  std::vector<std::string> columns = {first};
  for (const FilterMethod method : kMethods) {
    columns.push_back(FilterMethodName(method));
  }
  return columns;
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 8", "Average number of candidate vertices", config);

  std::printf("\n(a) vary data graphs (dense queries)\n");
  PrintHeaderRow(HeaderColumns("dataset"));
  Graph youtube;
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {spec.code};
    for (const FilterMethod method : kMethods) {
      row.push_back(FormatDouble(MeanCandidates(data, queries, method), 1));
    }
    PrintRow(row);
    if (spec.code == "yt") youtube = data;
  }
  if (youtube.vertex_count() == 0) return;

  std::printf("\n(b) vary |V(q)| on yt (dense queries)\n");
  PrintHeaderRow(HeaderColumns("|V(q)|"));
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(youtube, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {FormatCount(size)};
    for (const FilterMethod method : kMethods) {
      row.push_back(
          FormatDouble(MeanCandidates(youtube, queries, method), 1));
    }
    PrintRow(row);
  }

  std::printf("\n(c) dense vs sparse on yt (default size)\n");
  PrintHeaderRow(HeaderColumns("density"));
  const uint32_t default_size =
      DefaultQuerySize(AnalogByCode("yt", config.full_scale), config);
  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    const auto queries = MakeQuerySet(youtube, default_size, density,
                                      config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {QueryDensityName(density)};
    for (const FilterMethod method : kMethods) {
      row.push_back(
          FormatDouble(MeanCandidates(youtube, queries, method), 1));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
