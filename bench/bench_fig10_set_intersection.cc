// Figure 10: Hybrid vs QFilter set intersection inside the optimized GQL
// engine — (a) enumeration time across datasets, (b) varying dense query
// sizes on the Youtube analog. The paper finds QFilter ahead on the dense
// graphs (eu, hu) and behind on sparse ones.
#include "report.h"
#include "runner.h"
#include "sgm/util/qfilter.h"

namespace sgm::bench {
namespace {

double MeanEnumerationMs(const Graph& data, const std::vector<Graph>& queries,
                         const BenchConfig& config,
                         IntersectionMethod intersection) {
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.intersection = intersection;
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  return RunQuerySet(data, queries, options).enumeration_ms.mean();
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 10",
              "Set intersection methods in the optimized GQL engine (mean"
              " enumeration ms)",
              config);
  std::printf("SIMD kernel active: %s\n", QFilterUsesSimd() ? "yes" : "no");

  std::printf("\n(a) vary data graphs (dense queries)\n");
  PrintHeaderRow({"dataset", "Hybrid", "QFilter"});
  Graph youtube;
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    PrintRow({spec.code,
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kHybrid)),
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kQFilter))});
    if (spec.code == "yt") youtube = data;
  }
  if (youtube.vertex_count() == 0) return;

  std::printf("\n(b) vary dense queries on yt\n");
  PrintHeaderRow({"|V(q)|", "Hybrid", "QFilter"});
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(youtube, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    PrintRow({FormatCount(size),
              FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                             IntersectionMethod::kHybrid)),
              FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                             IntersectionMethod::kQFilter))});
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
