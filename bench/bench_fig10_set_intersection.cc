// Figure 10: set intersection inside the optimized GQL engine — (a)
// enumeration time across datasets, (b) varying dense query sizes on the
// Youtube analog. The paper finds QFilter ahead on the dense graphs (eu,
// hu) and behind on sparse ones. This build extends the figure with the
// bitmap sidecar kernels (DESIGN.md §10): Bitmap forces word-wise AND
// wherever the aux structure carries bitmap rows, Auto picks per
// intersection between bitmap and sorted-array kernels. Section (c) runs
// the density extreme the sidecar targets — a dense RMAT graph under the
// optimized CECI and DP-iso presets — and every (c) run's RunReport (with
// bitmap_intersections and LC-cache counters) lands in
// BENCH_intersection.json.
#include "report.h"
#include "runner.h"
#include "sgm/util/bitmap_intersection.h"
#include "sgm/util/qfilter.h"

namespace sgm::bench {
namespace {

MatchOptions IntersectionOptions(Algorithm algorithm,
                                 const BenchConfig& config,
                                 IntersectionMethod intersection) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.intersection = intersection;
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

double MeanEnumerationMs(const Graph& data, const std::vector<Graph>& queries,
                         const BenchConfig& config,
                         IntersectionMethod intersection) {
  return RunQuerySet(data, queries,
                     IntersectionOptions(Algorithm::kGraphQL, config,
                                         intersection))
      .enumeration_ms.mean();
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 10",
              "Set intersection methods in the optimized GQL engine (mean"
              " enumeration ms)",
              config);
  std::printf("SIMD kernels active: qfilter=%s bitmap=%s\n",
              QFilterUsesSimd() ? "yes" : "no",
              BitmapKernelsUseSimd() ? "yes" : "no");

  std::printf("\n(a) vary data graphs (dense queries)\n");
  PrintHeaderRow({"dataset", "Hybrid", "QFilter", "Bitmap", "Auto"});
  Graph youtube;
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    PrintRow({spec.code,
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kHybrid)),
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kQFilter)),
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kBitmap)),
              FormatDouble(MeanEnumerationMs(data, queries, config,
                                             IntersectionMethod::kAuto))});
    if (spec.code == "yt") youtube = data;
  }

  if (youtube.vertex_count() != 0) {
    std::printf("\n(b) vary dense queries on yt\n");
    PrintHeaderRow({"|V(q)|", "Hybrid", "QFilter", "Bitmap", "Auto"});
    for (const uint32_t size : config.query_sizes) {
      const auto queries =
          MakeQuerySet(youtube, size,
                       size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                       config.queries_per_set, config.seed);
      if (queries.empty()) continue;
      PrintRow({FormatCount(size),
                FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                               IntersectionMethod::kHybrid)),
                FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                               IntersectionMethod::kQFilter)),
                FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                               IntersectionMethod::kBitmap)),
                FormatDouble(MeanEnumerationMs(youtube, queries, config,
                                               IntersectionMethod::kAuto))});
    }
  }

  // (c) The bitmap sidecar's target regime: a dense power-law graph where
  // candidate-adjacency lists overlap heavily, under the two presets whose
  // orders interleave non-backward extensions (CECI, DP-iso) and therefore
  // also exercise the LC reuse cache.
  std::printf("\n(c) dense RMAT, optimized CECI / DP-iso\n");
  PrintHeaderRow({"preset", "Hybrid", "Bitmap", "Auto", "bitmap ix", "LC hit%"});
  DatasetSpec dense;
  dense.name = "RMAT-dense";
  dense.code = "rd";
  dense.vertex_count = config.full_scale ? 65536 : 2048;
  dense.edge_count = dense.vertex_count * 20;
  dense.label_count = 4;
  dense.power_law = true;
  const Graph rmat = BuildDataset(dense, config.seed);
  const auto rmat_queries =
      MakeQuerySet(rmat, 8, QueryDensity::kDense, config.queries_per_set,
                   config.seed);
  std::vector<ReportSeries> series;
  if (!rmat_queries.empty()) {
    const std::pair<const char*, Algorithm> presets[] = {
        {"CECI", Algorithm::kCECI}, {"DPiso", Algorithm::kDPiso}};
    const std::pair<const char*, IntersectionMethod> kernels[] = {
        {"hybrid", IntersectionMethod::kHybrid},
        {"bitmap", IntersectionMethod::kBitmap},
        {"auto", IntersectionMethod::kAuto}};
    for (const auto& [preset_name, algorithm] : presets) {
      std::vector<std::string> cells = {preset_name};
      uint64_t bitmap_ix = 0, hits = 0, misses = 0;
      for (const auto& [kernel_name, kernel] : kernels) {
        const QuerySetRun run = RunQuerySet(
            rmat, rmat_queries,
            IntersectionOptions(algorithm, config, kernel));
        cells.push_back(FormatDouble(run.enumeration_ms.mean()));
        if (kernel == IntersectionMethod::kBitmap) {
          for (const obs::RunReport& report : run.reports) {
            bitmap_ix += report.bitmap_intersections;
            hits += report.lc_cache_hits;
            misses += report.lc_cache_misses;
          }
        }
        series.push_back({std::string(preset_name) + "/" + kernel_name,
                          run.reports});
      }
      cells.push_back(FormatCount(bitmap_ix));
      const uint64_t lookups = hits + misses;
      cells.push_back(FormatDouble(
          lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                   static_cast<double>(lookups)));
      PrintRow(cells);
    }
  }
  WriteRunReportsJson("BENCH_intersection.json", "fig10_intersection", config,
                      series);
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
