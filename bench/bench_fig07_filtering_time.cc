// Figure 7: preprocessing (filtering) time of GQL, CFL, CECI and DP-iso —
// (a) across datasets, (b) varying |V(q)| on the Youtube analog,
// (c) dense vs sparse query sets on the Youtube analog.
//
// Following the paper, the measured time covers candidate generation plus
// the construction of each method's own auxiliary structure (none for GQL,
// tree edges for CFL's CPI, all edges for CECI and DP-iso).
#include <utility>

#include "report.h"
#include "runner.h"
#include "sgm/core/aux_structure.h"
#include "sgm/core/filter/filter.h"
#include "sgm/util/timer.h"

namespace sgm::bench {
namespace {

struct MethodSpec {
  FilterMethod filter;
  AuxEdgeScope aux_scope;
};

constexpr MethodSpec kMethods[] = {
    {FilterMethod::kGraphQL, AuxEdgeScope::kNone},
    {FilterMethod::kCFL, AuxEdgeScope::kTreeEdges},
    {FilterMethod::kCECI, AuxEdgeScope::kAllEdges},
    {FilterMethod::kDPiso, AuxEdgeScope::kAllEdges},
};

double MeanFilterTime(const Graph& data, const std::vector<Graph>& queries,
                      const MethodSpec& method) {
  RunningStats stats;
  for (const Graph& query : queries) {
    Timer timer;
    const FilterResult filtered = RunFilter(method.filter, query, data);
    if (!filtered.candidates.AnyEmpty()) {
      switch (method.aux_scope) {
        case AuxEdgeScope::kNone:
          break;
        case AuxEdgeScope::kTreeEdges:
          AuxStructure::BuildTreeEdges(query, data, filtered.candidates,
                                       filtered.bfs_tree->parent);
          break;
        case AuxEdgeScope::kAllEdges:
          AuxStructure::BuildAllEdges(query, data, filtered.candidates);
          break;
      }
    }
    stats.Add(timer.ElapsedMillis());
  }
  return stats.mean();
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 7", "Preprocessing time of filtering methods (ms)",
              config);

  // (a) across datasets at the default query size, dense queries.
  std::printf("\n(a) vary data graphs (dense queries)\n");
  PrintHeaderRow({"dataset", "GQL", "CFL", "CECI", "DP"});
  Graph youtube;  // reused by (b) and (c)
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const uint32_t size = DefaultQuerySize(spec, config);
    const auto queries = MakeQuerySet(data, size, QueryDensity::kDense,
                                      config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {spec.code};
    for (const MethodSpec& method : kMethods) {
      row.push_back(FormatDouble(MeanFilterTime(data, queries, method)));
    }
    PrintRow(row);
    if (spec.code == "yt") youtube = data;
  }
  if (youtube.vertex_count() == 0) return;

  // (b) vary |V(q)| on the Youtube analog.
  std::printf("\n(b) vary |V(q)| on yt (dense queries)\n");
  PrintHeaderRow({"|V(q)|", "GQL", "CFL", "CECI", "DP"});
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(youtube, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {FormatCount(size)};
    for (const MethodSpec& method : kMethods) {
      row.push_back(FormatDouble(MeanFilterTime(youtube, queries, method)));
    }
    PrintRow(row);
  }

  // (c) dense vs sparse on the Youtube analog.
  std::printf("\n(c) dense vs sparse on yt (default size)\n");
  PrintHeaderRow({"density", "GQL", "CFL", "CECI", "DP"});
  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    const auto queries = MakeQuerySet(
        youtube, DefaultQuerySize(AnalogByCode("yt", config.full_scale), config),
        density, config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {QueryDensityName(density)};
    for (const MethodSpec& method : kMethods) {
      row.push_back(FormatDouble(MeanFilterTime(youtube, queries, method)));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
