// Dynamic-update acceptance benchmark (DESIGN.md §14): on a 100k-vertex
// RMAT graph with batches of at most 64 edge updates, compare applying a
// batch incrementally (delta overlay + candidate repair + anchored delta
// enumeration through ContinuousMatcher) against what a static system must
// do for the same batch — rebuild the CSR from scratch and re-match every
// standing query. Counts are cross-checked per batch: the incrementally
// maintained match count of every query must equal the rebuilt graph's
// cold match count, so the speedup this bench reports is for *exact* work.
// Writes BENCH_dynamic.json; bench/BENCH_dynamic_baseline.json pins the
// floor via the dynamic_speedup check in bench/regression_manifest.json.
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "report.h"
#include "workloads.h"
#include "sgm/dynamic/continuous.h"
#include "sgm/dynamic/dynamic_graph.h"
#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/matcher.h"
#include "sgm/obs/json.h"
#include "sgm/util/timer.h"

namespace sgm::bench {
namespace {

// Mutable mirror of the graph a static system would maintain: the full
// label and edge lists the per-batch CSR rebuild starts from. Keeping the
// mirror current is untimed bookkeeping — a static system has its edge
// list ready too; what it cannot skip is the rebuild + rematch, which is
// exactly what the rebuild pass times.
struct MirrorGraph {
  std::vector<Label> labels;
  std::set<std::pair<Vertex, Vertex>> edges;
  Label tombstone = 0;

  void Apply(const dynamic::UpdateOp& op) {
    switch (op.kind) {
      case dynamic::UpdateKind::kAddEdge:
        edges.insert(std::minmax(op.u, op.v));
        break;
      case dynamic::UpdateKind::kRemoveEdge:
        edges.erase(std::minmax(op.u, op.v));
        break;
      case dynamic::UpdateKind::kAddVertex:
        labels.push_back(op.label);
        break;
      case dynamic::UpdateKind::kRemoveVertex:
        labels[op.u] = tombstone;  // stays as an isolated tombstone
        break;
    }
  }

  Graph Build() const {
    GraphBuilder builder;
    for (const Label label : labels) builder.AddVertex(label);
    for (const auto& [u, v] : edges) builder.AddEdge(u, v);
    return builder.Build();
  }
};

MirrorGraph MakeMirror(const Graph& graph, Label tombstone) {
  MirrorGraph mirror;
  mirror.tombstone = tombstone;
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    mirror.labels.push_back(graph.label(v));
  }
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    for (const Vertex w : graph.neighbors(v)) {
      if (v < w) mirror.edges.emplace(v, w);
    }
  }
  return mirror;
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Dynamic updates",
              "incremental batch apply vs rebuild-and-rematch, exact counts"
              " cross-checked per batch",
              config);

  // The acceptance scale is fixed at 100k vertices (the criterion this
  // bench records); SGM_BENCH_FULL bumps the edge volume, not |V|.
  const uint32_t vertices = 100000;
  const uint32_t edges = config.full_scale ? 1000000 : 400000;
  constexpr uint32_t kLabels = 24;
  constexpr uint32_t kQueries = 4;
  constexpr uint32_t kBatches = 16;
  constexpr uint32_t kMaxOpsPerBatch = 64;

  Prng prng(config.seed + 140);
  const Graph base = GenerateRmat(vertices, edges, kLabels, &prng);
  std::printf("graph: |V|=%u |E|=%u |Sigma|=%u\n", base.vertex_count(),
              base.edge_count(), kLabels);

  const std::vector<Graph> queries =
      MakeQuerySet(base, 8, QueryDensity::kAny, kQueries, config.seed + 141);
  if (queries.empty()) {
    std::printf("no queries extracted; aborting\n");
    return;
  }

  // Edge-churn stream: the acceptance criterion is about edge updates, so
  // vertex ops are weighted out.
  dynamic::StreamGenOptions stream_options;
  stream_options.batches = kBatches;
  stream_options.max_ops_per_batch = kMaxOpsPerBatch;
  stream_options.add_edge_weight = 0.55;
  stream_options.remove_edge_weight = 0.45;
  stream_options.add_vertex_weight = 0.0;
  stream_options.remove_vertex_weight = 0.0;
  const dynamic::UpdateStream stream =
      dynamic::GenerateUpdateStream(base, stream_options, &prng);

  // All matches, no budget: the per-batch count cross-check needs exact
  // counts on both sides.
  MatchOptions options = MatchOptions::Recommended(8);
  options.max_matches = 0;
  options.time_limit_ms = config.full_scale ? 300000.0 : 60000.0;

  dynamic::DynamicGraph graph(base);
  dynamic::ContinuousMatcher matcher(&graph);
  std::vector<uint64_t> maintained;  // per query, folded from the deltas
  std::vector<uint64_t> query_ids;
  for (const Graph& query : queries) {
    std::string error;
    const uint64_t id = matcher.Register(query, &error);
    if (id == 0) {
      std::printf("query rejected: %s\n", error.c_str());
      return;
    }
    query_ids.push_back(id);
    maintained.push_back(MatchQuery(query, base, options).match_count);
  }

  MirrorGraph mirror = MakeMirror(base, graph.tombstone_label());

  PrintHeaderRow({"batch", "ops", "+adds", "-retracts", "incr-ms",
                  "rebuild-ms", "speedup", "exact"});

  double incremental_ms = 0.0, rebuild_ms = 0.0;
  double apply_ms = 0.0, enumerate_ms = 0.0;
  uint64_t additions = 0, retractions = 0, candidates_repaired = 0;
  size_t total_ops = 0;
  bool consistent = true;
  obs::Json batches_json = obs::Json::Array();

  for (size_t b = 0; b < stream.batches.size(); ++b) {
    const dynamic::UpdateBatch& batch = stream.batches[b];
    total_ops += batch.ops.size();

    // Incremental side: one timed ApplyBatch.
    Timer incr_timer;
    std::string error;
    const auto result = matcher.ApplyBatch(batch, &error);
    const double batch_incr_ms = incr_timer.ElapsedMillis();
    if (!result.has_value()) {
      std::printf("batch %zu failed to apply: %s\n", b, error.c_str());
      return;
    }
    incremental_ms += batch_incr_ms;
    apply_ms += result->apply_ms;
    enumerate_ms += result->enumerate_ms;
    uint64_t batch_adds = 0, batch_retracts = 0;
    for (size_t q = 0; q < result->deltas.size(); ++q) {
      const dynamic::MatchDelta& delta = result->deltas[q];
      maintained[q] += delta.additions;
      maintained[q] -= delta.retractions;
      batch_adds += delta.additions;
      batch_retracts += delta.retractions;
      candidates_repaired += delta.candidates_repaired;
    }
    additions += batch_adds;
    retractions += batch_retracts;

    // Rebuild side: what a static system does for the same batch — a
    // fresh CSR from the full edge list, then a cold match per standing
    // query. The mirror update itself is untimed bookkeeping.
    for (const dynamic::UpdateOp& op : batch.ops) mirror.Apply(op);
    Timer rebuild_timer;
    const Graph rebuilt = mirror.Build();
    std::vector<uint64_t> cold_counts;
    for (const Graph& query : queries) {
      cold_counts.push_back(MatchQuery(query, rebuilt, options).match_count);
    }
    const double batch_rebuild_ms = rebuild_timer.ElapsedMillis();
    rebuild_ms += batch_rebuild_ms;

    bool batch_exact = true;
    for (size_t q = 0; q < queries.size(); ++q) {
      if (maintained[q] != cold_counts[q]) batch_exact = false;
    }
    consistent &= batch_exact;

    PrintRow({FormatCount(b), FormatCount(batch.ops.size()),
              FormatCount(batch_adds), FormatCount(batch_retracts),
              FormatDouble(batch_incr_ms), FormatDouble(batch_rebuild_ms),
              FormatDouble(batch_incr_ms > 0.0
                               ? batch_rebuild_ms / batch_incr_ms
                               : 0.0),
              batch_exact ? "yes" : "NO"});

    obs::Json entry = obs::Json::Object();
    entry.Set("batch", obs::Json::Number(uint64_t{b}));
    entry.Set("ops", obs::Json::Number(uint64_t{batch.ops.size()}));
    entry.Set("additions", obs::Json::Number(batch_adds));
    entry.Set("retractions", obs::Json::Number(batch_retracts));
    entry.Set("incremental_ms", obs::Json::Number(batch_incr_ms));
    entry.Set("rebuild_ms", obs::Json::Number(batch_rebuild_ms));
    entry.Set("counts_identical", obs::Json::Bool(batch_exact));
    batches_json.Append(std::move(entry));
  }

  const double speedup =
      incremental_ms > 0.0 ? rebuild_ms / incremental_ms : 0.0;
  std::printf("\ntotals: %zu batches, %zu ops, +%llu / -%llu matches\n",
              stream.batches.size(), total_ops,
              static_cast<unsigned long long>(additions),
              static_cast<unsigned long long>(retractions));
  std::printf("incremental %.2f ms vs rebuild-and-rematch %.2f ms"
              " -> speedup %.1fx, counts %s\n",
              incremental_ms, rebuild_ms, speedup,
              consistent ? "identical" : "DIVERGED");

  obs::Json root = obs::Json::Object();
  root.Set("bench", obs::Json::String("dynamic_updates"));
  root.Set("seed", obs::Json::Number(config.seed));
  obs::Json graph_json = obs::Json::Object();
  graph_json.Set("vertices", obs::Json::Number(uint64_t{base.vertex_count()}));
  graph_json.Set("edges", obs::Json::Number(uint64_t{base.edge_count()}));
  graph_json.Set("labels", obs::Json::Number(uint64_t{kLabels}));
  root.Set("graph", std::move(graph_json));
  root.Set("queries", obs::Json::Number(uint64_t{queries.size()}));
  root.Set("batches", obs::Json::Number(uint64_t{stream.batches.size()}));
  root.Set("ops", obs::Json::Number(uint64_t{total_ops}));
  root.Set("max_ops_per_batch", obs::Json::Number(uint64_t{kMaxOpsPerBatch}));
  obs::Json incr_json = obs::Json::Object();
  incr_json.Set("total_ms", obs::Json::Number(incremental_ms));
  incr_json.Set("apply_ms", obs::Json::Number(apply_ms));
  incr_json.Set("enumerate_ms", obs::Json::Number(enumerate_ms));
  incr_json.Set("additions", obs::Json::Number(additions));
  incr_json.Set("retractions", obs::Json::Number(retractions));
  incr_json.Set("candidates_repaired",
                obs::Json::Number(candidates_repaired));
  root.Set("incremental", std::move(incr_json));
  obs::Json rebuild_json = obs::Json::Object();
  rebuild_json.Set("total_ms", obs::Json::Number(rebuild_ms));
  root.Set("rebuild", std::move(rebuild_json));
  root.Set("speedup", obs::Json::Number(speedup));
  root.Set("counts_identical", obs::Json::Bool(consistent));
  root.Set("per_batch", std::move(batches_json));

  std::FILE* json = std::fopen("BENCH_dynamic.json", "w");
  if (json == nullptr) {
    std::printf("could not open BENCH_dynamic.json for writing\n");
    return;
  }
  const std::string text = root.Dump(2);
  std::fwrite(text.data(), 1, text.size(), json);
  std::fputc('\n', json);
  std::fclose(json);
  std::printf("wrote BENCH_dynamic.json\n");
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
