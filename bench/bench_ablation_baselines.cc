// Ablation: the cross-model baselines against the framework — Ullmann
// (1976), classic VF2, the Generic Join (WCOJ) engine and Glasgow vs the
// paper's recommended GQLfs configuration, across query sizes on the Yeast
// analog. Confirms the paper's observation that the
// preprocessing-enumeration framework dominates the direct state-space
// algorithms, and positions the WCOJ model (Section 2.2) on the same axis.
#include "report.h"
#include "runner.h"
#include "sgm/baselines/ullmann.h"
#include "sgm/baselines/vf2.h"
#include "sgm/glasgow/glasgow.h"
#include "sgm/util/stats.h"
#include "sgm/wcoj/generic_join.h"

namespace sgm::bench {
namespace {

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Ablation: baselines",
              "Mean query time (ms) of cross-model baselines vs GQLfs on ye",
              config);

  const DatasetSpec spec = AnalogByCode("ye", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);

  PrintHeaderRow({"|V(q)|", "GQLfs", "Ullmann", "VF2", "WCOJ", "GLW"});
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(data, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;

    MatchOptions gql = MatchOptions::Optimized(Algorithm::kGraphQL);
    gql.use_failing_sets = true;
    gql.max_matches = config.max_matches;
    gql.time_limit_ms = config.time_limit_ms;
    const double gql_ms = RunQuerySet(data, queries, gql).total_ms.mean();

    RunningStats ullmann_ms, vf2_ms, wcoj_ms, glasgow_ms;
    for (const Graph& query : queries) {
      UllmannOptions ullmann_options;
      ullmann_options.max_matches = config.max_matches;
      ullmann_options.time_limit_ms = config.time_limit_ms;
      const auto ullmann = UllmannMatch(query, data, ullmann_options);
      ullmann_ms.Add(ullmann.timed_out ? config.time_limit_ms
                                       : ullmann.total_ms);

      Vf2Options vf2_options;
      vf2_options.max_matches = config.max_matches;
      vf2_options.time_limit_ms = config.time_limit_ms;
      const auto vf2 = Vf2Match(query, data, vf2_options);
      vf2_ms.Add(vf2.timed_out ? config.time_limit_ms : vf2.total_ms);

      WcojOptions wcoj_options;
      wcoj_options.max_results = config.max_matches;
      wcoj_options.time_limit_ms = config.time_limit_ms;
      const auto wcoj = GenericJoinMatch(query, data, wcoj_options);
      wcoj_ms.Add(wcoj.timed_out ? config.time_limit_ms : wcoj.total_ms);

      GlasgowOptions glasgow_options;
      glasgow_options.max_matches = config.max_matches;
      glasgow_options.time_limit_ms = config.time_limit_ms;
      const auto glasgow = GlasgowMatch(query, data, glasgow_options);
      glasgow_ms.Add(glasgow.status == GlasgowStatus::kTimedOut
                         ? config.time_limit_ms
                         : glasgow.total_ms);
    }
    PrintRow({FormatCount(size), FormatDouble(gql_ms),
              FormatDouble(ullmann_ms.mean()), FormatDouble(vf2_ms.mean()),
              FormatDouble(wcoj_ms.mean()), FormatDouble(glasgow_ms.mean())});
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
