// Figure 12: standard deviation of the enumeration time across the queries
// of each query set on the Youtube analog — large SD shows that per-query
// times vary wildly within a set. Same Section 5.3 protocol as Figure 11.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 12",
              "Standard deviation of enumeration time on yt (ms)", config);

  const DatasetSpec spec = AnalogByCode("yt", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);

  std::vector<std::string> header = {"query-set"};
  for (const Algorithm algorithm : kAllAlgorithms) {
    header.push_back(AlgorithmName(algorithm));
  }
  PrintHeaderRow(header);

  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    for (const uint32_t size : config.query_sizes) {
      if (size <= 4 && density == QueryDensity::kSparse) continue;
      const auto queries =
          MakeQuerySet(data, size,
                       size <= 4 ? QueryDensity::kAny : density,
                       config.queries_per_set, config.seed);
      if (queries.empty()) continue;
      std::string label = "Q";
      label += std::to_string(size);
      label += size <= 4 ? "" : (density == QueryDensity::kDense ? "D" : "S");
      std::vector<std::string> row = {label};
      for (const Algorithm algorithm : kAllAlgorithms) {
        MatchOptions options = MatchOptions::Optimized(algorithm);
        options.max_matches = config.max_matches;
        options.time_limit_ms = config.time_limit_ms;
        const QuerySetRun run = RunQuerySet(data, queries, options);
        row.push_back(FormatDouble(run.enumeration_ms.stddev()));
      }
      PrintRow(row);
    }
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
