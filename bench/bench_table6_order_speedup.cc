// Table 6: speedup of the best matching order (best of 1000 random samples
// in the paper; scaled here) over the orders chosen by GQL and RI, per
// query on the Youtube analog's dense and sparse default query sets.
// Reports mean / std / max of the speedups and the number of queries with a
// speedup above 10x.
#include <algorithm>

#include "report.h"
#include "runner.h"
#include "sgm/core/spectrum.h"
#include "sgm/util/stats.h"

namespace sgm::bench {
namespace {

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Table 6",
              "Speedup of the best sampled order over GQL and RI on yt",
              config);

  const DatasetSpec spec = AnalogByCode("yt", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);
  const uint32_t size = DefaultQuerySize(spec, config);
  const uint32_t num_orders = config.full_scale ? 1000 : 30;
  const uint32_t queries_per_set = std::min(config.queries_per_set, 8u);

  PrintHeaderRow({"query-set", "algo", "mean", "std", "max", ">10"});
  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    const auto queries =
        MakeQuerySet(data, size, density, queries_per_set, config.seed);
    if (queries.empty()) continue;

    RunningStats gql_speedups, ri_speedups;
    uint32_t gql_over10 = 0, ri_over10 = 0;
    for (const Graph& query : queries) {
      SpectrumOptions spectrum_options;
      spectrum_options.num_orders = num_orders;
      spectrum_options.per_order_time_limit_ms = config.time_limit_ms / 4.0;
      spectrum_options.max_matches = config.max_matches;
      Prng prng(config.seed + 7);
      const SpectrumResult spectrum =
          RunSpectrum(query, data, spectrum_options, &prng);

      double best = spectrum.completed > 0
                        ? spectrum.best_ms
                        : spectrum_options.per_order_time_limit_ms;
      // The paper's "best" also considers the orders the algorithms under
      // study produce, so gather every algorithm's time first.
      double gql_ms = config.time_limit_ms;
      double ri_ms = config.time_limit_ms;
      for (const Algorithm algorithm : kAllAlgorithms) {
        MatchOptions options = MatchOptions::Optimized(algorithm);
        options.max_matches = config.max_matches;
        options.time_limit_ms = config.time_limit_ms;
        const MatchResult result = MatchQuery(query, data, options);
        if (!result.unsolved()) {
          best = std::min(best, result.enumeration_ms);
          if (algorithm == Algorithm::kGraphQL) gql_ms = result.enumeration_ms;
          if (algorithm == Algorithm::kRI) ri_ms = result.enumeration_ms;
        }
      }
      const double floor = std::max(best, 1e-3);  // avoid 0/0 blowups
      const double gql_speedup = gql_ms / floor;
      gql_speedups.Add(gql_speedup);
      if (gql_speedup > 10.0) ++gql_over10;
      const double ri_speedup = ri_ms / floor;
      ri_speedups.Add(ri_speedup);
      if (ri_speedup > 10.0) ++ri_over10;
    }
    std::string label = "Q";
    label += std::to_string(size);
    label += density == QueryDensity::kDense ? "D" : "S";
    PrintRow({label, "GQL", FormatDouble(gql_speedups.mean()),
              FormatDouble(gql_speedups.stddev()),
              FormatDouble(gql_speedups.max()), FormatCount(gql_over10)});
    PrintRow({label, "RI", FormatDouble(ri_speedups.mean()),
              FormatDouble(ri_speedups.stddev()),
              FormatDouble(ri_speedups.max()), FormatCount(ri_over10)});
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
