#include "runner.h"

namespace sgm::bench {

QuerySetRun RunQuerySet(const Graph& data, const std::vector<Graph>& queries,
                        const MatchOptions& options) {
  QuerySetRun run;
  for (const Graph& query : queries) {
    const MatchResult result = MatchQuery(query, data, options);
    ++run.executed;
    const bool unsolved = result.unsolved();
    const double enumeration_ms =
        unsolved ? options.time_limit_ms : result.enumeration_ms;
    run.enumeration_ms.Add(enumeration_ms);
    run.preprocessing_ms.Add(result.preprocessing_ms);
    run.total_ms.Add(result.preprocessing_ms + enumeration_ms);
    run.average_candidates.Add(result.average_candidates);
    run.match_counts.Add(static_cast<double>(result.match_count));
    if (unsolved) ++run.unsolved;
    run.failing_set_prunes += result.enumerate.failing_set_prunes;
    run.per_query_enumeration_ms.push_back(enumeration_ms);
    run.per_query_unsolved.push_back(unsolved);
    run.reports.push_back(obs::BuildRunReport(query, data, options, result));
  }
  return run;
}

}  // namespace sgm::bench
