// Figure 9: effect of the set-intersection local-candidate computation on
// the enumeration time. For each of QSI, GQL, CFL and 2PP, the speedup of
// the optimized engine (edges between candidates for all of E(q) +
// Algorithm 5, extra VF2++ rules removed) over the original local-candidate
// method. Following Section 5.2, QSI and 2PP keep their LDF candidate sets
// in both configurations; RI is omitted because it shares QSI's method.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kQuickSI,
    Algorithm::kGraphQL,
    Algorithm::kCFL,
    Algorithm::kVF2pp,
};

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 9",
              "Average speedup of enumeration from Algorithm 5 (original /"
              " optimized enumeration time)",
              config);
  PrintHeaderRow({"dataset", "QSI", "GQL", "CFL", "2PP"});

  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {spec.code};
    for (const Algorithm algorithm : kAlgorithms) {
      MatchOptions classic = MatchOptions::Classic(algorithm);
      classic.max_matches = config.max_matches;
      classic.time_limit_ms = config.time_limit_ms;

      MatchOptions optimized = MatchOptions::Optimized(algorithm);
      // Section 5.2 keeps the original candidate sets: LDF for QSI and 2PP.
      optimized.filter = classic.filter;
      optimized.max_matches = config.max_matches;
      optimized.time_limit_ms = config.time_limit_ms;

      const QuerySetRun before = RunQuerySet(data, queries, classic);
      const QuerySetRun after = RunQuerySet(data, queries, optimized);
      const double speedup =
          after.enumeration_ms.mean() > 0.0
              ? before.enumeration_ms.mean() / after.enumeration_ms.mean()
              : 0.0;
      row.push_back(FormatDouble(speedup, 2) + "x");
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
