// Ablation (beyond the paper's figures, motivated by the Section 3.1.2
// discussion): how the number of refinement iterations trades pruning power
// against filtering time — GraphQL's global-refinement rounds and DP-iso's
// alternating passes, on the Youtube analog, with the STEADY fixpoint as
// the pruning-power asymptote.
#include "report.h"
#include "sgm/core/filter/filter.h"
#include "sgm/util/stats.h"
#include "sgm/util/timer.h"

namespace sgm::bench {
namespace {

struct Sample {
  double mean_candidates = 0.0;
  double mean_ms = 0.0;
};

template <typename RunFn>
Sample Measure(const std::vector<Graph>& queries, const RunFn& run) {
  RunningStats candidates, time_ms;
  for (const Graph& query : queries) {
    Timer timer;
    const FilterResult result = run(query);
    time_ms.Add(timer.ElapsedMillis());
    candidates.Add(result.candidates.AverageCount());
  }
  return {candidates.mean(), time_ms.mean()};
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Ablation: refinement rounds",
              "Pruning power vs filtering cost as refinement iterations grow",
              config);

  const DatasetSpec spec = AnalogByCode("yt", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);
  const auto queries =
      MakeQuerySet(data, DefaultQuerySize(spec, config), QueryDensity::kDense,
                   config.queries_per_set, config.seed);
  if (queries.empty()) return;

  std::printf("\nGraphQL global refinement rounds\n");
  PrintHeaderRow({"rounds", "avg-cands", "filter-ms"});
  for (const uint32_t rounds : {0u, 1u, 2u, 3u, 4u}) {
    FilterOptions options;
    options.graphql_refinement_rounds = rounds;
    const Sample sample = Measure(queries, [&](const Graph& query) {
      return RunGraphQlFilter(query, data, options);
    });
    PrintRow({FormatCount(rounds), FormatDouble(sample.mean_candidates, 1),
              FormatDouble(sample.mean_ms)});
  }

  std::printf("\nDP-iso alternating refinement passes (paper default k=3)\n");
  PrintHeaderRow({"passes", "avg-cands", "filter-ms"});
  for (const uint32_t passes : {1u, 2u, 3u, 4u, 6u}) {
    FilterOptions options;
    options.dpiso_refinement_rounds = passes;
    const Sample sample = Measure(queries, [&](const Graph& query) {
      return RunDpisoFilter(query, data, options);
    });
    PrintRow({FormatCount(passes), FormatDouble(sample.mean_candidates, 1),
              FormatDouble(sample.mean_ms)});
  }

  std::printf("\nSTEADY fixpoint baseline\n");
  PrintHeaderRow({"baseline", "avg-cands", "filter-ms"});
  const Sample steady = Measure(queries, [&](const Graph& query) {
    return RunSteadyFilter(query, data);
  });
  PrintRow({"STEADY", FormatDouble(steady.mean_candidates, 1),
            FormatDouble(steady.mean_ms)});
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
