#include "workloads.h"

#include <cstdlib>
#include <sstream>

namespace sgm::bench {

namespace {

uint64_t EnvUint(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

BenchConfig LoadBenchConfig() {
  BenchConfig config;
  config.full_scale = EnvUint("SGM_BENCH_FULL", 0) != 0;
  if (config.full_scale) {
    config.queries_per_set = 200;
    config.time_limit_ms = 300000.0;  // five minutes, as in the paper
    config.query_sizes = {4, 8, 16, 24, 32};
  }
  config.seed = EnvUint("SGM_BENCH_SEED", config.seed);
  config.queries_per_set = static_cast<uint32_t>(
      EnvUint("SGM_BENCH_QUERIES", config.queries_per_set));
  config.time_limit_ms = static_cast<double>(
      EnvUint("SGM_BENCH_TIME_LIMIT_MS",
              static_cast<uint64_t>(config.time_limit_ms)));
  return config;
}

std::vector<DatasetSpec> RealWorldAnalogs(bool full_scale) {
  // Table 3 of the paper. Scaled-down sizes keep each dataset's |Σ| and
  // average degree while bounding |E| for a single-core machine; the four
  // small graphs run at full scale in both modes.
  if (full_scale) {
    return {
        {"Yeast", "ye", 3112, 12519, 71, true, 0.0},
        {"Human", "hu", 4674, 86282, 44, true, 0.0},
        {"HPRD", "hp", 9460, 34998, 307, true, 0.0},
        {"WordNet", "wn", 76853, 120399, 5, true, 0.8},
        {"US Patents", "up", 3774768, 16518947, 20, true, 0.0},
        {"Youtube", "yt", 1134890, 2987624, 25, true, 0.0},
        {"DBLP", "db", 317080, 1049866, 15, true, 0.0},
        {"eu2005", "eu", 862664, 16138468, 40, true, 0.0},
    };
  }
  // Scaled mode shrinks |V| and |E|; |Σ| shrinks by roughly the square root
  // of the vertex scale factor so per-label candidate mass stays between
  // the paper's and a trivially easy setting (see DESIGN.md).
  return {
      {"Yeast", "ye", 3112, 12519, 71, true, 0.0},
      {"Human", "hu", 4674, 86282, 44, true, 0.0},
      {"HPRD", "hp", 9460, 34998, 307, true, 0.0},
      {"WordNet", "wn", 38426, 60200, 4, true, 0.8},
      {"US Patents", "up", 58980, 258108, 3, true, 0.0},
      {"Youtube", "yt", 70930, 186726, 6, true, 0.0},
      {"DBLP", "db", 39635, 131233, 5, true, 0.0},
      {"eu2005", "eu", 13479, 252163, 5, true, 0.0},
  };
}

DatasetSpec AnalogByCode(const std::string& code, bool full_scale) {
  for (const DatasetSpec& spec : RealWorldAnalogs(full_scale)) {
    if (spec.code == code) return spec;
  }
  SGM_CHECK_MSG(false, "unknown dataset code");
  return {};
}

std::vector<DatasetSpec> SelectedAnalogs(const BenchConfig& config) {
  std::vector<DatasetSpec> all = RealWorldAnalogs(config.full_scale);
  const char* selection = std::getenv("SGM_BENCH_DATASETS");
  if (selection == nullptr || *selection == '\0') return all;
  std::vector<DatasetSpec> picked;
  std::stringstream stream(selection);
  std::string code;
  while (std::getline(stream, code, ',')) {
    for (const DatasetSpec& spec : all) {
      if (spec.code == code) picked.push_back(spec);
    }
  }
  return picked.empty() ? all : picked;
}

Graph BuildDataset(const DatasetSpec& spec, uint64_t seed) {
  // Derive a per-dataset seed so datasets are independent of each other.
  uint64_t mix = seed;
  for (const char c : spec.code) mix = mix * 1099511628211ULL + static_cast<unsigned char>(c);
  Prng prng(mix);
  Graph graph = spec.power_law
                    ? GenerateRmat(spec.vertex_count, spec.edge_count,
                                   spec.label_count, &prng)
                    : GenerateErdosRenyi(spec.vertex_count, spec.edge_count,
                                         spec.label_count, &prng);
  if (spec.dominant_label_fraction > 0.0) {
    graph = RelabelSkewed(graph, spec.label_count,
                          spec.dominant_label_fraction, &prng);
  }
  return graph;
}

std::vector<Graph> MakeQuerySet(const Graph& data, uint32_t query_size,
                                QueryDensity density, uint32_t count,
                                uint64_t seed) {
  Prng prng(seed ^ (static_cast<uint64_t>(query_size) << 32) ^
            (static_cast<uint64_t>(density) << 16));
  return GenerateQuerySet(data, query_size, density, count, &prng);
}

uint32_t DefaultQuerySize(const DatasetSpec& spec, const BenchConfig& config) {
  uint32_t largest = config.query_sizes.back();
  // The paper caps Human and WordNet at 20 query vertices.
  if ((spec.code == "hu" || spec.code == "wn") && largest > 20) largest = 20;
  return largest;
}

}  // namespace sgm::bench
