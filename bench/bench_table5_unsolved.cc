// Table 5: number of unsolved queries per algorithm on yt, up, hu and wn,
// without and with failing-set pruning, plus the fail-all row (queries no
// algorithm solves). Section 5.3 protocol (optimized engines, GraphQL
// candidates for the direct-enumeration methods).
#include <array>

#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

constexpr const char* kDatasets[] = {"yt", "up", "hu", "wn"};

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Table 5",
              "Number of unsolved queries (wo/fs and w/fs per dataset)",
              config);

  // This bench runs 7 algorithms x 2 settings over several query sets per
  // dataset; cap the per-set query count to keep the default run short.
  const uint32_t queries_per_set = std::min(config.queries_per_set, 10u);

  std::vector<std::string> header = {"algo"};
  for (const char* code : kDatasets) {
    header.push_back(std::string(code) + " wo/fs");
    header.push_back(std::string(code) + " w/fs");
  }
  PrintHeaderRow(header);

  constexpr size_t kAlgorithmCount = std::size(kAllAlgorithms);
  // unsolved[d][a][fs]
  std::vector<std::array<std::array<uint32_t, 2>, kAlgorithmCount>> unsolved(
      std::size(kDatasets));
  std::vector<std::array<uint32_t, 2>> fail_all(std::size(kDatasets),
                                                {0, 0});
  std::vector<uint32_t> total_queries(std::size(kDatasets), 0);

  for (size_t d = 0; d < std::size(kDatasets); ++d) {
    for (auto& per_algo : unsolved[d]) per_algo = {0, 0};
    const DatasetSpec spec = AnalogByCode(kDatasets[d], config.full_scale);
    const Graph data = BuildDataset(spec, config.seed);
    const uint32_t largest = DefaultQuerySize(spec, config);
    for (const QueryDensity density :
         {QueryDensity::kDense, QueryDensity::kSparse}) {
      for (const uint32_t size : config.query_sizes) {
        if (size <= 4) continue;
        if (size > largest) continue;
        const auto queries =
            MakeQuerySet(data, size, density, queries_per_set, config.seed);
        total_queries[d] += static_cast<uint32_t>(queries.size());
        // per-query fail-all bookkeeping
        std::vector<std::array<bool, 2>> all_failed(queries.size(),
                                                    {true, true});
        for (size_t a = 0; a < kAlgorithmCount; ++a) {
          for (const int fs : {0, 1}) {
            MatchOptions options = MatchOptions::Optimized(kAllAlgorithms[a]);
            options.use_failing_sets = fs == 1;
            options.max_matches = config.max_matches;
            options.time_limit_ms = config.time_limit_ms;
            const QuerySetRun run = RunQuerySet(data, queries, options);
            unsolved[d][a][fs] += run.unsolved;
            for (size_t q = 0; q < queries.size(); ++q) {
              if (!run.per_query_unsolved[q]) all_failed[q][fs] = false;
            }
          }
        }
        for (const auto& flags : all_failed) {
          if (flags[0]) ++fail_all[d][0];
          if (flags[1]) ++fail_all[d][1];
        }
      }
    }
  }

  for (size_t a = 0; a < kAlgorithmCount; ++a) {
    std::vector<std::string> row = {AlgorithmName(kAllAlgorithms[a])};
    for (size_t d = 0; d < std::size(kDatasets); ++d) {
      row.push_back(FormatCount(unsolved[d][a][0]));
      row.push_back(FormatCount(unsolved[d][a][1]));
    }
    PrintRow(row);
  }
  std::vector<std::string> fail_row = {"Fail-All"};
  for (size_t d = 0; d < std::size(kDatasets); ++d) {
    fail_row.push_back(FormatCount(fail_all[d][0]));
    fail_row.push_back(FormatCount(fail_all[d][1]));
  }
  PrintRow(fail_row);

  std::printf("\nqueries per dataset: ");
  for (size_t d = 0; d < std::size(kDatasets); ++d) {
    std::printf("%s=%u ", kDatasets[d], total_queries[d]);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
