// Figure 16: overall performance — the paper's optimized GQLfs and RIfs
// (optimized engine + failing sets) against the original algorithms O-CECI,
// O-DP, O-RI, O-2PP and the Glasgow constraint-programming solver. Reports
// mean total query time (preprocessing + enumeration). Glasgow runs under a
// memory budget proportional to the dataset scale, reproducing the paper's
// out-of-memory behaviour on the larger graphs. Also writes
// BENCH_overall.json: per framework configuration, the full RunReport of
// every executed query (the schema of sgm/obs/run_report.h).
#include "report.h"
#include "runner.h"
#include "sgm/glasgow/glasgow.h"

namespace sgm::bench {
namespace {

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 16",
              "Overall performance: mean total query time (ms); OOM = out of"
              " memory",
              config);
  PrintHeaderRow({"dataset", "GQLfs", "RIfs", "O-CECI", "O-DP", "O-RI",
                  "O-2PP", "GLW"});

  // Glasgow's bit-parallel relations get 2 GiB at paper scale; the scaled
  // analogs shrink the budget proportionally so the admit/deny pattern of
  // Figure 16 (only the small graphs complete) is preserved.
  const size_t glasgow_budget = config.full_scale
                                    ? size_t{2} * 1024 * 1024 * 1024
                                    : size_t{256} * 1024 * 1024;

  std::vector<ReportSeries> series;
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {spec.code};

    for (const Algorithm algorithm : {Algorithm::kGraphQL, Algorithm::kRI}) {
      MatchOptions options = MatchOptions::Optimized(algorithm);
      options.use_failing_sets = true;
      options.max_matches = config.max_matches;
      options.time_limit_ms = config.time_limit_ms;
      QuerySetRun run = RunQuerySet(data, queries, options);
      row.push_back(FormatDouble(run.total_ms.mean()));
      series.push_back({spec.code + std::string("/") +
                            AlgorithmName(algorithm) + "fs",
                        std::move(run.reports)});
    }
    for (const Algorithm algorithm :
         {Algorithm::kCECI, Algorithm::kDPiso, Algorithm::kRI,
          Algorithm::kVF2pp}) {
      MatchOptions options = MatchOptions::Classic(algorithm);
      options.max_matches = config.max_matches;
      options.time_limit_ms = config.time_limit_ms;
      QuerySetRun run = RunQuerySet(data, queries, options);
      row.push_back(FormatDouble(run.total_ms.mean()));
      series.push_back({spec.code + std::string("/O-") +
                            AlgorithmName(algorithm),
                        std::move(run.reports)});
    }

    // Glasgow.
    GlasgowOptions glasgow_options;
    glasgow_options.max_matches = config.max_matches;
    glasgow_options.time_limit_ms = config.time_limit_ms;
    glasgow_options.memory_limit_bytes = glasgow_budget;
    RunningStats glasgow_ms;
    bool oom = false;
    for (const Graph& query : queries) {
      const GlasgowResult result = GlasgowMatch(query, data, glasgow_options);
      if (result.status == GlasgowStatus::kOutOfMemory) {
        oom = true;
        break;
      }
      glasgow_ms.Add(result.status == GlasgowStatus::kTimedOut
                         ? config.time_limit_ms
                         : result.total_ms);
    }
    row.push_back(oom ? "OOM" : FormatDouble(glasgow_ms.mean()));
    PrintRow(row);
  }

  WriteRunReportsJson("BENCH_overall.json", "fig16_overall", config, series);
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
