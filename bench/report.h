// Minimal table/report printing for the bench harness. Every bench binary
// prints (a) a provenance header with seed and scale so runs are
// reproducible, and (b) fixed-width rows mirroring the series of the
// corresponding paper table/figure.
#ifndef SGM_BENCH_REPORT_H_
#define SGM_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "sgm/obs/run_report.h"
#include "workloads.h"

namespace sgm::bench {

/// Prints the standard provenance banner: experiment id, what the paper
/// figure/table shows, and the active configuration.
void PrintBanner(const std::string& experiment_id,
                 const std::string& description, const BenchConfig& config);

/// Prints one fixed-width table row; the first call with the same column
/// set should be preceded by PrintHeaderRow.
void PrintHeaderRow(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);

/// Formats helpers.
std::string FormatDouble(double value, int precision = 2);
std::string FormatCount(uint64_t value);

/// One labeled series of RunReports inside a BENCH_*.json file.
struct ReportSeries {
  std::string label;
  std::vector<obs::RunReport> reports;
};

/// Writes `{"bench": ..., "seed": ..., "series": [{"label": ...,
/// "run_reports": [...]}]}` to `path`, so every BENCH_*.json entry carries
/// the same per-run schema as sgm_match --report. Returns false (after
/// printing a diagnostic) when the file cannot be written.
bool WriteRunReportsJson(const std::string& path, const std::string& bench_id,
                         const BenchConfig& config,
                         const std::vector<ReportSeries>& series);

}  // namespace sgm::bench

#endif  // SGM_BENCH_REPORT_H_
