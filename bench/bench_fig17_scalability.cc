// Figure 17: scalability on RMAT graphs with the paper's default
// configuration (|V|=1M, d=16, |Σ|=16; scaled down by default), varying the
// average degree, the label count and the vertex count. GQLfs and RIfs must
// find all results (no match cap); per configuration the bench reports mean
// query time, unsolved counts, and the mean result count (suppressed when
// more than half the queries are unsolved, following the paper's protocol;
// killed queries contribute the results found before the kill).
//
// Beyond the paper: a multi-thread section comparing static root-slice
// partitioning against the work-stealing scheduler, on RMAT with dense
// 8-vertex queries and on an adversarially skewed hub instance, reporting
// the load-imbalance factor (max/mean worker load) and critical-path
// speedups, and writing BENCH_scalability.json so successive PRs can track
// the trajectory. Worker loads replay per-item thread-CPU costs (see the
// parallel section comment below), which keeps the numbers about the
// scheduler's assignment rather than about how many cores the host happens
// to have; the JSON records hardware_concurrency so readers can interpret
// the raw wall-clock column.
#include <algorithm>
#include <cstdio>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "report.h"
#include "runner.h"
#include "sgm/graph/graph_builder.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/util/timer.h"

namespace sgm::bench {
namespace {

struct ScaleDefaults {
  uint32_t vertices;
  uint32_t degree;
  uint32_t labels;
};

MatchOptions Configured(Algorithm algorithm, const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.use_failing_sets = true;
  options.max_matches = 0;  // find all results (Section 5.6)
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

void Report(const Graph& data, const BenchConfig& config,
            const std::string& label) {
  const auto queries = MakeQuerySet(data, 16, QueryDensity::kDense,
                                    config.queries_per_set, config.seed);
  if (queries.empty()) {
    PrintRow({label, "-", "-", "-", "-", "-"});
    return;
  }
  std::vector<std::string> row = {label};
  std::string results_cell = "-";
  for (const Algorithm algorithm : {Algorithm::kGraphQL, Algorithm::kRI}) {
    const QuerySetRun run =
        RunQuerySet(data, queries, Configured(algorithm, config));
    row.push_back(FormatDouble(run.enumeration_ms.mean()));
    row.push_back(FormatCount(run.unsolved));
    if (algorithm == Algorithm::kGraphQL &&
        run.unsolved * 2 <= run.executed) {
      results_cell = FormatDouble(run.match_counts.mean(), 0);
    }
  }
  row.push_back(results_cell);
  PrintRow(row);
}

// ---- Multi-thread scalability: static slices vs work-stealing. ----
//
// The host may have fewer cores than workers (this container has one), in
// which case per-OS-thread busy time measures kernel scheduling rather than
// the scheduler's assignment: with a dynamic queue, whichever thread runs
// first drains everything. Work items are therefore timed individually
// (thread CPU clock) and each run is scored by replaying those costs:
//  - static: items are bound to workers up front, so per-worker loads are
//    exact regardless of how the OS interleaved the threads;
//  - work-stealing: greedy list-scheduling of the item costs onto T
//    idealized workers — what any work-conserving scheduler achieves when
//    every worker has a real core.
// The modeled makespan (max worker load) yields the critical-path speedup
// and the load-imbalance factor (max/mean load); wall time is reported raw.

struct ParallelAgg {
  double wall_ms = 0.0;
  std::vector<double> worker_busy_ms;  // aggregated per worker index
  std::vector<double> item_costs_ms;   // every work item, execution order
  uint64_t matches = 0;
  uint64_t recursion_calls = 0;
  uint64_t root_chunks = 0;
  uint64_t stolen_subtasks = 0;
  uint64_t subtasks_published = 0;
  uint32_t unsolved = 0;
  /// Full RunReport of the set's last query under this configuration — the
  /// per-run schema every BENCH_*.json entry carries.
  obs::RunReport exemplar_report;
};

ParallelAgg RunParallelSet(const Graph& data, const std::vector<Graph>& queries,
                           const MatchOptions& options, ParallelMode mode,
                           uint32_t threads) {
  ParallelAgg agg;
  agg.worker_busy_ms.assign(threads, 0.0);
  for (const Graph& query : queries) {
    ParallelOptions parallel_options;
    parallel_options.thread_count = threads;
    parallel_options.mode = mode;
    Timer timer;
    const ParallelMatchResult run =
        ParallelMatchQuery(query, data, options, parallel_options);
    agg.wall_ms += timer.ElapsedMillis();
    agg.matches += run.result.match_count;
    agg.recursion_calls += run.result.enumerate.recursion_calls;
    agg.subtasks_published += run.subtasks_published;
    if (run.result.unsolved()) ++agg.unsolved;
    agg.exemplar_report = obs::BuildRunReport(query, data, options, run);
    for (uint32_t w = 0; w < run.worker_stats.size() && w < threads; ++w) {
      const ParallelWorkerStats& ws = run.worker_stats[w];
      agg.worker_busy_ms[w] += ws.busy_ms;
      agg.root_chunks += ws.root_chunks;
      agg.stolen_subtasks += ws.stolen_subtasks;
      agg.item_costs_ms.insert(agg.item_costs_ms.end(),
                               ws.item_costs_ms.begin(),
                               ws.item_costs_ms.end());
    }
  }
  return agg;
}

struct ModeledRun {
  double makespan_ms = 0.0;
  double total_ms = 0.0;
  double imbalance = 1.0;
};

/// Replays the measured item costs under the mode's assignment (see the
/// section comment above).
ModeledRun ModelRun(ParallelMode mode, const ParallelAgg& agg,
                    uint32_t threads) {
  std::vector<double> loads;
  if (mode == ParallelMode::kStaticSlices) {
    loads = agg.worker_busy_ms;
  } else {
    loads.assign(threads, 0.0);
    for (const double cost : agg.item_costs_ms) {
      *std::min_element(loads.begin(), loads.end()) += cost;
    }
  }
  ModeledRun modeled;
  for (const double load : loads) {
    modeled.makespan_ms = std::max(modeled.makespan_ms, load);
    modeled.total_ms += load;
  }
  if (!loads.empty() && modeled.total_ms > 0.0) {
    modeled.imbalance = modeled.makespan_ms *
                        static_cast<double>(loads.size()) / modeled.total_ms;
  }
  return modeled;
}

/// An adversarially skewed instance, scaled up from the unit test: one hub
/// vertex whose depth-1 subtree holds nearly all matches, plus `decoys`
/// cheap roots. A static split hands the hub slice to a single worker.
Graph MakeSkewedHubGraph(uint32_t spokes, uint32_t decoys) {
  GraphBuilder builder;
  const Vertex hub = builder.AddVertex(0);
  std::vector<Vertex> spoke_ids;
  spoke_ids.reserve(spokes);
  for (uint32_t s = 0; s < spokes; ++s) spoke_ids.push_back(builder.AddVertex(1));
  for (uint32_t s = 0; s < spokes; ++s) {
    builder.AddEdge(hub, spoke_ids[s]);
    builder.AddEdge(spoke_ids[s], spoke_ids[(s + 1) % spokes]);
  }
  for (uint32_t d = 0; d < decoys; ++d) {
    const Vertex decoy = builder.AddVertex(0);
    const uint32_t s = (d * 7) % spokes;
    builder.AddEdge(decoy, spoke_ids[s]);
    builder.AddEdge(decoy, spoke_ids[(s + 1) % spokes]);
  }
  return builder.Build();
}

Graph MakeTriangleQuery() {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddVertex(1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  return builder.Build();
}

struct ParallelRow {
  const char* workload;
  ParallelMode mode;
  uint32_t threads;
  ParallelAgg agg;
  ModeledRun modeled;
};

void RunWorkload(const char* workload, const Graph& data,
                 const std::vector<Graph>& queries, const MatchOptions& options,
                 std::vector<ParallelRow>* rows) {
  for (const ParallelMode mode :
       {ParallelMode::kStaticSlices, ParallelMode::kWorkStealing}) {
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      ParallelAgg agg = RunParallelSet(data, queries, options, mode, threads);
      const ModeledRun modeled = ModelRun(mode, agg, threads);
      rows->push_back({workload, mode, threads, std::move(agg), modeled});
    }
  }
}

void RunParallelScalability(const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(Algorithm::kGraphQL);
  options.use_failing_sets = true;
  options.max_matches = 0;
  options.time_limit_ms = config.time_limit_ms;

  std::vector<ParallelRow> rows;

  // Workload 1: the section's RMAT graph with dense 8-vertex queries.
  const uint32_t vertices = config.full_scale ? 1000000u : 50000u;
  Prng prng(config.seed + 1717);
  const Graph rmat = GenerateRmat(vertices, vertices / 2 * 16, 16, &prng);
  const auto rmat_queries = MakeQuerySet(rmat, 8, QueryDensity::kDense,
                                         config.queries_per_set, config.seed);
  std::printf(
      "\n(parallel) static slices vs work-stealing; imbalance and"
      " cp-speedup replay measured item costs (see source)\n"
      "rmat: |V|=%u d=16 |Sigma|=16, Q8D GQLfs find-all;"
      " skewed-hub: one heavy root + cheap decoys, triangle query\n",
      vertices);
  if (!rmat_queries.empty()) {
    RunWorkload("rmat", rmat, rmat_queries, options, &rows);
  } else {
    std::printf("no dense rmat queries extracted; skipping rmat workload\n");
  }

  // Workload 2: the skewed-hub acceptance instance (same shape as the
  // ParallelMatcherTest skewed workload, scaled up). Repeat the query a few
  // times so each configuration accumulates measurable work.
  // Sized so the fixed startup window (donation cannot begin until the OS
  // has scheduled every worker once) is small next to the per-query work.
  const uint32_t spokes = config.full_scale ? 1000000u : 200000u;
  const Graph skewed = MakeSkewedHubGraph(spokes, 63);
  const std::vector<Graph> skewed_queries(3, MakeTriangleQuery());
  RunWorkload("skewed-hub", skewed, skewed_queries, options, &rows);

  const auto baseline_of = [&](const char* workload, ParallelMode mode) {
    for (const ParallelRow& row : rows) {
      if (row.workload == workload && row.mode == mode && row.threads == 1) {
        return row.modeled.makespan_ms;
      }
    }
    return 0.0;
  };

  PrintHeaderRow({"workload", "mode", "T", "wall-ms", "makespan", "imbal",
                  "cp-speedup", "chunks", "stolen"});
  for (const ParallelRow& row : rows) {
    const double baseline = baseline_of(row.workload, row.mode);
    const double makespan = row.modeled.makespan_ms;
    PrintRow({row.workload, ParallelModeName(row.mode),
              FormatCount(row.threads), FormatDouble(row.agg.wall_ms),
              FormatDouble(makespan), FormatDouble(row.modeled.imbalance),
              FormatDouble(makespan > 0.0 ? baseline / makespan : 1.0),
              FormatCount(row.agg.root_chunks),
              FormatCount(row.agg.stolen_subtasks)});
  }

  // Machine-readable trajectory record. Built as an obs::Json document so
  // each run entry embeds a full RunReport — the same per-run schema as
  // sgm_match --report and the other BENCH_*.json writers.
  obs::Json doc = obs::Json::Object();
  doc.Set("bench", obs::Json::String("fig17_scalability_parallel"));
  doc.Set("seed", obs::Json::Number(config.seed));
  doc.Set("hardware_concurrency",
          obs::Json::Number(uint64_t{std::thread::hardware_concurrency()}));
  doc.Set("scheduling_model",
          obs::Json::String(
              "per-item thread-CPU costs replayed onto T workers: exact"
              " assignment for static slices, greedy list-scheduling for"
              " work-stealing"));
  obs::Json runs = obs::Json::Array();
  for (const ParallelRow& row : rows) {
    const double baseline = baseline_of(row.workload, row.mode);
    const double makespan = row.modeled.makespan_ms;
    obs::Json entry = obs::Json::Object();
    entry.Set("workload", obs::Json::String(row.workload));
    entry.Set("mode", obs::Json::String(ParallelModeName(row.mode)));
    entry.Set("threads", obs::Json::Number(uint64_t{row.threads}));
    entry.Set("wall_ms", obs::Json::Number(row.agg.wall_ms));
    entry.Set("total_busy_ms", obs::Json::Number(row.modeled.total_ms));
    entry.Set("makespan_ms", obs::Json::Number(makespan));
    entry.Set("load_imbalance", obs::Json::Number(row.modeled.imbalance));
    entry.Set("critical_path_speedup",
              obs::Json::Number(makespan > 0.0 ? baseline / makespan : 1.0));
    entry.Set("matches", obs::Json::Number(row.agg.matches));
    entry.Set("recursion_calls", obs::Json::Number(row.agg.recursion_calls));
    entry.Set("root_chunks", obs::Json::Number(row.agg.root_chunks));
    entry.Set("stolen_subtasks", obs::Json::Number(row.agg.stolen_subtasks));
    entry.Set("subtasks_published",
              obs::Json::Number(row.agg.subtasks_published));
    entry.Set("unsolved", obs::Json::Number(uint64_t{row.agg.unsolved}));
    entry.Set("run_report", row.agg.exemplar_report.ToJson());
    runs.Append(std::move(entry));
  }
  doc.Set("runs", std::move(runs));

  // Acceptance at 8 threads, per workload: work-stealing throughput
  // relative to static slicing (makespan basis) plus both load-imbalance
  // factors.
  obs::Json acceptance = obs::Json::Object();
  for (const char* workload : {"rmat", "skewed-hub"}) {
    double static_ms8 = 0.0, ws_ms8 = 0.0, static_imb8 = 1.0, ws_imb8 = 1.0;
    bool found = false;
    for (const ParallelRow& row : rows) {
      if (row.threads != 8 || std::string_view(row.workload) != workload) {
        continue;
      }
      found = true;
      if (row.mode == ParallelMode::kStaticSlices) {
        static_ms8 = row.modeled.makespan_ms;
        static_imb8 = row.modeled.imbalance;
      } else {
        ws_ms8 = row.modeled.makespan_ms;
        ws_imb8 = row.modeled.imbalance;
      }
    }
    if (!found) continue;
    obs::Json entry = obs::Json::Object();
    entry.Set("throughput_ratio_8t",
              obs::Json::Number(ws_ms8 > 0.0 ? static_ms8 / ws_ms8 : 1.0));
    entry.Set("work_stealing_imbalance_8t", obs::Json::Number(ws_imb8));
    entry.Set("static_imbalance_8t", obs::Json::Number(static_imb8));
    acceptance.Set(workload, std::move(entry));
  }
  doc.Set("acceptance", std::move(acceptance));

  std::FILE* json = std::fopen("BENCH_scalability.json", "w");
  if (json == nullptr) {
    std::printf("could not open BENCH_scalability.json for writing\n");
    return;
  }
  const std::string text = doc.Dump(2);
  std::fwrite(text.data(), 1, text.size(), json);
  std::fputc('\n', json);
  std::fclose(json);
  std::printf("wrote BENCH_scalability.json\n");
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 17",
              "Scalability on RMAT (Q16D, find all results): mean query time"
              " / #unsolved per algorithm, #results",
              config);

  const ScaleDefaults defaults = config.full_scale
                                     ? ScaleDefaults{1000000, 16, 16}
                                     : ScaleDefaults{50000, 16, 16};
  const auto build = [&](uint32_t vertices, uint32_t degree,
                         uint32_t labels) {
    Prng prng(config.seed + vertices + degree * 131 + labels * 1313);
    return GenerateRmat(vertices, vertices / 2 * degree, labels, &prng);
  };

  std::printf("\n(a-c) vary average degree d(G), |V|=%u, |Σ|=%u\n",
              defaults.vertices, defaults.labels);
  PrintHeaderRow({"d(G)", "GQLfs", "uns-GQL", "RIfs", "uns-RI", "#results"});
  for (const uint32_t degree : {8u, 12u, 16u, 20u}) {
    Report(build(defaults.vertices, degree, defaults.labels), config,
           FormatCount(degree));
  }

  std::printf("\n(d-f) vary |Σ|, |V|=%u, d=%u\n", defaults.vertices,
              defaults.degree);
  PrintHeaderRow({"|Sigma|", "GQLfs", "uns-GQL", "RIfs", "uns-RI",
                  "#results"});
  for (const uint32_t labels : {8u, 12u, 16u, 20u}) {
    Report(build(defaults.vertices, defaults.degree, labels), config,
           FormatCount(labels));
  }

  std::printf("\n(g-i) vary |V|, d=%u, |Σ|=%u\n", defaults.degree,
              defaults.labels);
  PrintHeaderRow({"|V|", "GQLfs", "uns-GQL", "RIfs", "uns-RI", "#results"});
  for (const uint32_t scale : {1u, 2u, 4u, 8u}) {
    const uint32_t vertices = defaults.vertices / 4 * scale;
    Report(build(vertices, defaults.degree, defaults.labels), config,
           FormatCount(vertices));
  }

  RunParallelScalability(config);
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
