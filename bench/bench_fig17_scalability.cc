// Figure 17: scalability on RMAT graphs with the paper's default
// configuration (|V|=1M, d=16, |Σ|=16; scaled down by default), varying the
// average degree, the label count and the vertex count. GQLfs and RIfs must
// find all results (no match cap); per configuration the bench reports mean
// query time, unsolved counts, and the mean result count (suppressed when
// more than half the queries are unsolved, following the paper's protocol;
// killed queries contribute the results found before the kill).
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

struct ScaleDefaults {
  uint32_t vertices;
  uint32_t degree;
  uint32_t labels;
};

MatchOptions Configured(Algorithm algorithm, const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.use_failing_sets = true;
  options.max_matches = 0;  // find all results (Section 5.6)
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

void Report(const Graph& data, const BenchConfig& config,
            const std::string& label) {
  const auto queries = MakeQuerySet(data, 16, QueryDensity::kDense,
                                    config.queries_per_set, config.seed);
  if (queries.empty()) {
    PrintRow({label, "-", "-", "-", "-", "-"});
    return;
  }
  std::vector<std::string> row = {label};
  std::string results_cell = "-";
  for (const Algorithm algorithm : {Algorithm::kGraphQL, Algorithm::kRI}) {
    const QuerySetRun run =
        RunQuerySet(data, queries, Configured(algorithm, config));
    row.push_back(FormatDouble(run.enumeration_ms.mean()));
    row.push_back(FormatCount(run.unsolved));
    if (algorithm == Algorithm::kGraphQL &&
        run.unsolved * 2 <= run.executed) {
      results_cell = FormatDouble(run.match_counts.mean(), 0);
    }
  }
  row.push_back(results_cell);
  PrintRow(row);
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 17",
              "Scalability on RMAT (Q16D, find all results): mean query time"
              " / #unsolved per algorithm, #results",
              config);

  const ScaleDefaults defaults = config.full_scale
                                     ? ScaleDefaults{1000000, 16, 16}
                                     : ScaleDefaults{50000, 16, 16};
  const auto build = [&](uint32_t vertices, uint32_t degree,
                         uint32_t labels) {
    Prng prng(config.seed + vertices + degree * 131 + labels * 1313);
    return GenerateRmat(vertices, vertices / 2 * degree, labels, &prng);
  };

  std::printf("\n(a-c) vary average degree d(G), |V|=%u, |Σ|=%u\n",
              defaults.vertices, defaults.labels);
  PrintHeaderRow({"d(G)", "GQLfs", "uns-GQL", "RIfs", "uns-RI", "#results"});
  for (const uint32_t degree : {8u, 12u, 16u, 20u}) {
    Report(build(defaults.vertices, degree, defaults.labels), config,
           FormatCount(degree));
  }

  std::printf("\n(d-f) vary |Σ|, |V|=%u, d=%u\n", defaults.vertices,
              defaults.degree);
  PrintHeaderRow({"|Sigma|", "GQLfs", "uns-GQL", "RIfs", "uns-RI",
                  "#results"});
  for (const uint32_t labels : {8u, 12u, 16u, 20u}) {
    Report(build(defaults.vertices, defaults.degree, labels), config,
           FormatCount(labels));
  }

  std::printf("\n(g-i) vary |V|, d=%u, |Σ|=%u\n", defaults.degree,
              defaults.labels);
  PrintHeaderRow({"|V|", "GQLfs", "uns-GQL", "RIfs", "uns-RI", "#results"});
  for (const uint32_t scale : {1u, 2u, 4u, 8u}) {
    const uint32_t vertices = defaults.vertices / 4 * scale;
    Report(build(vertices, defaults.degree, defaults.labels), config,
           FormatCount(vertices));
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
