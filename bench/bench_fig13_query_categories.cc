// Figure 13: percentage of short / median / long / unsolved queries per
// algorithm on the Youtube analog (dense and sparse sets). The paper's
// categories (<1s, <60s, <300s, killed) are kept proportional to the
// configured per-query time limit: short < limit/300, median < limit/5,
// long <= limit, unsolved = killed.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

struct Categories {
  uint32_t short_count = 0;
  uint32_t median_count = 0;
  uint32_t long_count = 0;
  uint32_t unsolved_count = 0;
};

Categories Categorize(const QuerySetRun& run, double limit_ms) {
  Categories categories;
  for (size_t i = 0; i < run.per_query_enumeration_ms.size(); ++i) {
    if (run.per_query_unsolved[i]) {
      ++categories.unsolved_count;
    } else if (run.per_query_enumeration_ms[i] < limit_ms / 300.0) {
      ++categories.short_count;
    } else if (run.per_query_enumeration_ms[i] < limit_ms / 5.0) {
      ++categories.median_count;
    } else {
      ++categories.long_count;
    }
  }
  return categories;
}

std::string Percent(uint32_t part, uint32_t whole) {
  if (whole == 0) return "-";
  return FormatDouble(100.0 * part / whole, 1) + "%";
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 13",
              "Query categories by enumeration time on yt "
              "(short/median/long/unsolved)",
              config);

  const DatasetSpec spec = AnalogByCode("yt", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);

  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    std::printf("\n%s queries\n", QueryDensityName(density));
    PrintHeaderRow({"query-set", "algo", "short", "median", "long",
                    "unsolved"});
    for (const uint32_t size : config.query_sizes) {
      if (size <= 8) continue;  // the paper omits Q4/Q8: all short
      const auto queries = MakeQuerySet(data, size, density,
                                        config.queries_per_set, config.seed);
      if (queries.empty()) continue;
      std::string label = "Q";
      label += std::to_string(size);
      label += density == QueryDensity::kDense ? "D" : "S";
      for (const Algorithm algorithm : kAllAlgorithms) {
        MatchOptions options = MatchOptions::Optimized(algorithm);
        options.max_matches = config.max_matches;
        options.time_limit_ms = config.time_limit_ms;
        const QuerySetRun run = RunQuerySet(data, queries, options);
        const Categories c = Categorize(run, config.time_limit_ms);
        PrintRow({label, AlgorithmName(algorithm),
                  Percent(c.short_count, run.executed),
                  Percent(c.median_count, run.executed),
                  Percent(c.long_count, run.executed),
                  Percent(c.unsolved_count, run.executed)});
      }
    }
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
