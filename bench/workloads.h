// Shared workload machinery for the bench harness: synthetic analogs of the
// paper's eight real-world datasets (Table 3), the RMAT sweeps of Section
// 5.6, query-set generation following Section 4, and the global bench
// configuration (scaled down by default for a single-core machine; set
// SGM_BENCH_FULL=1 for paper-scale parameters — see DESIGN.md).
#ifndef SGM_BENCH_WORKLOADS_H_
#define SGM_BENCH_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sgm/graph/generators.h"
#include "sgm/graph/graph.h"
#include "sgm/graph/query_generator.h"
#include "sgm/util/prng.h"

namespace sgm::bench {

/// Blueprint of one synthetic dataset analog.
struct DatasetSpec {
  std::string name;  // full name, e.g. "Yeast"
  std::string code;  // the paper's two-letter code, e.g. "ye"
  uint32_t vertex_count;
  uint32_t edge_count;
  uint32_t label_count;
  /// Power-law (RMAT) or uniform (Erdős–Rényi) topology.
  bool power_law;
  /// Fraction of vertices carrying label 0 (0 = uniform labels). WordNet's
  /// analog uses 0.8, reproducing its "most vertices share one label"
  /// property that drives the paper's Figure 8 finding on wn.
  double dominant_label_fraction = 0.0;
};

/// Global knobs of a bench run.
struct BenchConfig {
  /// Queries per query set (the paper uses 200).
  uint32_t queries_per_set = 10;
  /// Per-query enumeration budget in ms (the paper kills at 5 minutes).
  double time_limit_ms = 1000.0;
  /// Match cap per query (the paper stops at 1e5).
  uint64_t max_matches = 100000;
  /// Default query sizes for the per-dataset experiments.
  std::vector<uint32_t> query_sizes = {4, 8, 16, 24};
  /// Master seed; every bench derives sub-seeds deterministically.
  uint64_t seed = 20200614;  // SIGMOD'20 opening day
  /// True when SGM_BENCH_FULL=1 restored paper-scale parameters.
  bool full_scale = false;
};

/// Reads SGM_BENCH_FULL / SGM_BENCH_SEED / SGM_BENCH_QUERIES /
/// SGM_BENCH_TIME_LIMIT_MS from the environment and returns the config.
BenchConfig LoadBenchConfig();

/// The eight analogs of Table 3. Scaled down unless full_scale; the paper's
/// |Σ| and density are preserved in both modes.
std::vector<DatasetSpec> RealWorldAnalogs(bool full_scale);

/// Looks up one analog by its two-letter code ("ye", "yt", ...).
DatasetSpec AnalogByCode(const std::string& code, bool full_scale);

/// Returns the subset of RealWorldAnalogs selected by SGM_BENCH_DATASETS
/// (comma-separated codes, e.g. "ye,hp"), or all of them.
std::vector<DatasetSpec> SelectedAnalogs(const BenchConfig& config);

/// Materializes a dataset (deterministic per spec + seed).
Graph BuildDataset(const DatasetSpec& spec, uint64_t seed);

/// Generates one query set following the paper's protocol. Returns fewer
/// queries when extraction keeps failing (e.g., dense sets on sparse data).
std::vector<Graph> MakeQuerySet(const Graph& data, uint32_t query_size,
                                QueryDensity density, uint32_t count,
                                uint64_t seed);

/// Default query set per dataset (the paper uses Q32D/Q32S, or Q20D/Q20S on
/// Human and WordNet; scaled runs use the largest configured size).
uint32_t DefaultQuerySize(const DatasetSpec& spec, const BenchConfig& config);

}  // namespace sgm::bench

#endif  // SGM_BENCH_WORKLOADS_H_
