// Figure 11: enumeration time of the ordering methods. All seven
// algorithms run with the optimized engine (all-edges auxiliary structure +
// Algorithm 5) and, for the direct-enumeration methods, GraphQL candidate
// sets — the Section 5.3 protocol that isolates ordering quality. Failing
// sets are disabled.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

MatchOptions OrderingProtocolOptions(Algorithm algorithm,
                                     const BenchConfig& config) {
  MatchOptions options = MatchOptions::Optimized(algorithm);
  options.max_matches = config.max_matches;
  options.time_limit_ms = config.time_limit_ms;
  return options;
}

std::vector<std::string> Header(const std::string& first) {
  std::vector<std::string> columns = {first};
  for (const Algorithm algorithm : kAllAlgorithms) {
    columns.push_back(AlgorithmName(algorithm));
  }
  return columns;
}

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 11",
              "Enumeration time of ordering methods (mean ms, optimized"
              " engines, no failing sets)",
              config);

  std::printf("\n(a) vary data graphs (dense queries)\n");
  PrintHeaderRow(Header("dataset"));
  Graph youtube;
  for (const DatasetSpec& spec : SelectedAnalogs(config)) {
    const Graph data = BuildDataset(spec, config.seed);
    const auto queries =
        MakeQuerySet(data, DefaultQuerySize(spec, config),
                     QueryDensity::kDense, config.queries_per_set,
                     config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {spec.code};
    for (const Algorithm algorithm : kAllAlgorithms) {
      const QuerySetRun run = RunQuerySet(
          data, queries, OrderingProtocolOptions(algorithm, config));
      row.push_back(FormatDouble(run.enumeration_ms.mean()));
    }
    PrintRow(row);
    if (spec.code == "yt") youtube = data;
  }
  if (youtube.vertex_count() == 0) return;

  std::printf("\n(b) vary |V(q)| on yt (dense queries)\n");
  PrintHeaderRow(Header("|V(q)|"));
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(youtube, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {FormatCount(size)};
    for (const Algorithm algorithm : kAllAlgorithms) {
      const QuerySetRun run = RunQuerySet(
          youtube, queries, OrderingProtocolOptions(algorithm, config));
      row.push_back(FormatDouble(run.enumeration_ms.mean()));
    }
    PrintRow(row);
  }

  std::printf("\n(c) dense vs sparse on yt (default size)\n");
  PrintHeaderRow(Header("density"));
  const uint32_t default_size =
      DefaultQuerySize(AnalogByCode("yt", config.full_scale), config);
  for (const QueryDensity density :
       {QueryDensity::kDense, QueryDensity::kSparse}) {
    const auto queries = MakeQuerySet(youtube, default_size, density,
                                      config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    std::vector<std::string> row = {QueryDensityName(density)};
    for (const Algorithm algorithm : kAllAlgorithms) {
      const QuerySetRun run = RunQuerySet(
          youtube, queries, OrderingProtocolOptions(algorithm, config));
      row.push_back(FormatDouble(run.enumeration_ms.mean()));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
