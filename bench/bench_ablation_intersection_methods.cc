// Ablation: microbenchmark of the set-intersection kernels (merge,
// galloping, hybrid, QFilter) over synthetic sorted arrays with controlled
// cardinality skew and selectivity — the design space behind the Section
// 3.3.2 analysis and recommendation 3. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <vector>

#include "sgm/util/prng.h"
#include "sgm/util/set_intersection.h"

namespace sgm {
namespace {

std::vector<Vertex> MakeSortedSet(Prng* prng, size_t size, Vertex universe) {
  std::vector<Vertex> values;
  values.reserve(size * 2);
  while (values.size() < size) {
    const size_t missing = size - values.size();
    for (size_t i = 0; i < missing * 2; ++i) {
      values.push_back(static_cast<Vertex>(prng->NextBounded(universe)));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }
  values.resize(size);
  return values;
}

void IntersectionArgs(benchmark::internal::Benchmark* bench) {
  // {size of A, skew factor |B| = |A| * skew}
  for (const int64_t size : {64, 1024, 16384}) {
    for (const int64_t skew : {1, 8, 64}) {
      bench->Args({size, skew});
    }
  }
}

template <IntersectionMethod kMethod>
void BM_Intersection(benchmark::State& state) {
  const auto size_a = static_cast<size_t>(state.range(0));
  const auto size_b = size_a * static_cast<size_t>(state.range(1));
  Prng prng(1234);
  const Vertex universe = static_cast<Vertex>(size_b * 4);
  const auto a = MakeSortedSet(&prng, size_a, universe);
  const auto b = MakeSortedSet(&prng, size_b, universe);
  std::vector<Vertex> out;
  out.reserve(size_a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(kMethod, a, b, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size_a + size_b));
}

BENCHMARK(BM_Intersection<IntersectionMethod::kMerge>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kGalloping>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kHybrid>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kQFilter>)
    ->Apply(IntersectionArgs);

}  // namespace
}  // namespace sgm

BENCHMARK_MAIN();
