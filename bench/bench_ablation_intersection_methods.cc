// Ablation: microbenchmark of the set-intersection kernels (merge,
// galloping, hybrid, QFilter, and the bitmap word kernels of DESIGN.md §10)
// over synthetic sorted arrays with controlled cardinality skew and
// selectivity — the design space behind the Section 3.3.2 analysis and
// recommendation 3. Uses google-benchmark.
//
// kBitmap/kAuto on raw sorted arrays measure the dispatch fallback (they
// delegate to hybrid — bitmap operands only exist inside the aux
// structure); the BM_Bitmap* benches measure the word kernels themselves
// against the sorted-array kernels at matched density.
#include <benchmark/benchmark.h>

#include <vector>

#include "sgm/util/bitmap_intersection.h"
#include "sgm/util/prng.h"
#include "sgm/util/set_intersection.h"

namespace sgm {
namespace {

std::vector<Vertex> MakeSortedSet(Prng* prng, size_t size, Vertex universe) {
  std::vector<Vertex> values;
  values.reserve(size * 2);
  while (values.size() < size) {
    const size_t missing = size - values.size();
    for (size_t i = 0; i < missing * 2; ++i) {
      values.push_back(static_cast<Vertex>(prng->NextBounded(universe)));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }
  values.resize(size);
  return values;
}

void IntersectionArgs(benchmark::internal::Benchmark* bench) {
  // {size of A, skew factor |B| = |A| * skew}
  for (const int64_t size : {64, 1024, 16384}) {
    for (const int64_t skew : {1, 8, 64}) {
      bench->Args({size, skew});
    }
  }
}

template <IntersectionMethod kMethod>
void BM_Intersection(benchmark::State& state) {
  const auto size_a = static_cast<size_t>(state.range(0));
  const auto size_b = size_a * static_cast<size_t>(state.range(1));
  Prng prng(1234);
  const Vertex universe = static_cast<Vertex>(size_b * 4);
  const auto a = MakeSortedSet(&prng, size_a, universe);
  const auto b = MakeSortedSet(&prng, size_b, universe);
  std::vector<Vertex> out;
  out.reserve(size_a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(kMethod, a, b, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size_a + size_b));
}

BENCHMARK(BM_Intersection<IntersectionMethod::kMerge>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kGalloping>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kHybrid>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kQFilter>)
    ->Apply(IntersectionArgs);
BENCHMARK(BM_Intersection<IntersectionMethod::kAuto>)
    ->Apply(IntersectionArgs);

// ---- Bitmap word kernels at matched universe/density. ----
//
// {universe bits, permille density of each operand}: the first axis is the
// candidate-set size a sidecar row covers (stride = universe/64 words), the
// second how full the rows are. 1000 permille reproduces the all-overlap
// extreme, 15 the sparse regime where sorted arrays should win.
void BitmapArgs(benchmark::internal::Benchmark* bench) {
  for (const int64_t universe : {256, 4096, 65536}) {
    for (const int64_t permille : {15, 125, 1000}) {
      bench->Args({universe, permille});
    }
  }
}

std::vector<uint64_t> MakeBitmap(Prng* prng, uint32_t universe,
                                 int64_t permille,
                                 std::vector<Vertex>* sorted) {
  std::vector<uint64_t> words(BitmapWords(universe), 0);
  for (uint32_t i = 0; i < universe; ++i) {
    if (static_cast<int64_t>(prng->NextBounded(1000)) < permille) {
      words[i >> 6] |= 1ULL << (i & 63);
      if (sorted != nullptr) sorted->push_back(static_cast<Vertex>(i));
    }
  }
  return words;
}

void BM_BitmapAnd(benchmark::State& state) {
  const auto universe = static_cast<uint32_t>(state.range(0));
  Prng prng(1234);
  const auto a = MakeBitmap(&prng, universe, state.range(1), nullptr);
  const auto b = MakeBitmap(&prng, universe, state.range(1), nullptr);
  std::vector<uint64_t> out(a.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapAnd(a.data(), b.data(), a.size(),
                                       out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(universe) * 2);
}
BENCHMARK(BM_BitmapAnd)->Apply(BitmapArgs);

void BM_BitmapMultiAndCount(benchmark::State& state) {
  const auto universe = static_cast<uint32_t>(state.range(0));
  Prng prng(1234);
  std::vector<std::vector<uint64_t>> operands;
  std::vector<const uint64_t*> rows;
  for (int i = 0; i < 3; ++i) {
    operands.push_back(MakeBitmap(&prng, universe, state.range(1), nullptr));
  }
  for (const auto& words : operands) rows.push_back(words.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapMultiAndCount(rows, operands[0].size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(universe) * 3);
}
BENCHMARK(BM_BitmapMultiAndCount)->Apply(BitmapArgs);

// The same operands through the sorted-array hybrid kernel, so one run of
// this binary yields the bitmap-vs-sorted crossover per density.
void BM_HybridAtDensity(benchmark::State& state) {
  const auto universe = static_cast<uint32_t>(state.range(0));
  Prng prng(1234);
  std::vector<Vertex> a, b;
  MakeBitmap(&prng, universe, state.range(1), &a);
  MakeBitmap(&prng, universe, state.range(1), &b);
  std::vector<Vertex> out;
  out.reserve(a.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Intersect(IntersectionMethod::kHybrid, a, b, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_HybridAtDensity)->Apply(BitmapArgs);

}  // namespace
}  // namespace sgm

BENCHMARK_MAIN();
