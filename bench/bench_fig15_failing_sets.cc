// Figure 15: effect of the failing-sets pruning — (a) DP-iso with and
// without the optimization across query sizes on the Youtube analog
// (w/fs hurts on small queries, helps by orders of magnitude on large
// ones); (b) the optimization applied to every algorithm at the default
// query size.
#include "report.h"
#include "runner.h"

namespace sgm::bench {
namespace {

void Run() {
  const BenchConfig config = LoadBenchConfig();
  PrintBanner("Figure 15",
              "Failing-set pruning: mean enumeration time wo/fs vs w/fs (ms)",
              config);

  const DatasetSpec spec = AnalogByCode("yt", config.full_scale);
  const Graph data = BuildDataset(spec, config.seed);

  std::printf("\n(a) DP with/without failing sets, vary |V(q)| on yt\n");
  PrintHeaderRow({"|V(q)|", "wo/fs", "w/fs", "prunes"});
  for (const uint32_t size : config.query_sizes) {
    const auto queries =
        MakeQuerySet(data, size,
                     size <= 4 ? QueryDensity::kAny : QueryDensity::kDense,
                     config.queries_per_set, config.seed);
    if (queries.empty()) continue;
    MatchOptions without = MatchOptions::Optimized(Algorithm::kDPiso);
    without.max_matches = config.max_matches;
    without.time_limit_ms = config.time_limit_ms;
    MatchOptions with = without;
    with.use_failing_sets = true;
    const QuerySetRun a = RunQuerySet(data, queries, without);
    const QuerySetRun b = RunQuerySet(data, queries, with);
    PrintRow({FormatCount(size), FormatDouble(a.enumeration_ms.mean()),
              FormatDouble(b.enumeration_ms.mean()),
              FormatCount(b.failing_set_prunes)});
  }

  std::printf("\n(b) all algorithms at the default size on yt\n");
  PrintHeaderRow({"algo", "wo/fs", "w/fs", "unsolved-wo", "unsolved-w"});
  const uint32_t default_size = DefaultQuerySize(spec, config);
  const auto queries = MakeQuerySet(data, default_size, QueryDensity::kDense,
                                    config.queries_per_set, config.seed);
  for (const Algorithm algorithm : kAllAlgorithms) {
    MatchOptions without = MatchOptions::Optimized(algorithm);
    without.max_matches = config.max_matches;
    without.time_limit_ms = config.time_limit_ms;
    MatchOptions with = without;
    with.use_failing_sets = true;
    const QuerySetRun a = RunQuerySet(data, queries, without);
    const QuerySetRun b = RunQuerySet(data, queries, with);
    PrintRow({AlgorithmName(algorithm), FormatDouble(a.enumeration_ms.mean()),
              FormatDouble(b.enumeration_ms.mean()), FormatCount(a.unsolved),
              FormatCount(b.unsolved)});
  }
}

}  // namespace
}  // namespace sgm::bench

int main() {
  sgm::bench::Run();
  return 0;
}
