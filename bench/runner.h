// Query-set execution helper shared by the workload benches: runs every
// query of a set under one MatchOptions configuration and aggregates the
// per-query metrics the paper reports (mean/SD enumeration time, unsolved
// counts, candidate counts).
#ifndef SGM_BENCH_RUNNER_H_
#define SGM_BENCH_RUNNER_H_

#include <vector>

#include "sgm/matcher.h"
#include "sgm/obs/run_report.h"
#include "sgm/util/stats.h"

namespace sgm::bench {

/// Aggregated outcome of running one query set under one configuration.
struct QuerySetRun {
  RunningStats enumeration_ms;
  RunningStats preprocessing_ms;
  RunningStats total_ms;
  RunningStats average_candidates;
  RunningStats match_counts;
  uint32_t unsolved = 0;
  uint32_t executed = 0;
  /// Total candidate extensions skipped by failing-set pruning.
  uint64_t failing_set_prunes = 0;
  std::vector<double> per_query_enumeration_ms;
  std::vector<bool> per_query_unsolved;
  /// One structured RunReport per executed query (same schema as sgm_match
  /// --report and every BENCH_*.json entry; see sgm/obs/run_report.h).
  std::vector<obs::RunReport> reports;
};

/// Runs all queries against the data graph. Unsolved (timed-out) queries
/// enter the time statistics at the full time limit, following Section 4 of
/// the paper ("we recorded the enumeration time of killed queries as five
/// minutes").
QuerySetRun RunQuerySet(const Graph& data, const std::vector<Graph>& queries,
                        const MatchOptions& options);

}  // namespace sgm::bench

#endif  // SGM_BENCH_RUNNER_H_
