#!/usr/bin/env python3
"""Guard serving-latency regressions in CI.

Compares a freshly generated BENCH_service.json (tools/sgm_serve --out)
against a committed baseline and fails when any pass's p99 latency
regresses by more than the allowed ratio. Sub-millisecond baselines are
noisy on shared CI runners, so an absolute slack floor is always added
on top of the ratio before a regression is declared.

Exit codes: 0 = within budget, 1 = regression, 2 = usage or I/O error.
"""

import argparse
import json
import sys


def fail_usage(message):
    print(f"check_bench_regression: {message}", file=sys.stderr)
    sys.exit(2)


def load_passes(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        fail_usage(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail_usage(f"{path} is not JSON: {err}")
    if doc.get("bench") != "service" or not isinstance(doc.get("passes"), list):
        fail_usage(f"{path} is not a BENCH_service.json document "
                   "(expected bench=service with a passes array)")
    passes = {}
    for entry in doc["passes"]:
        key = "cache-on" if entry.get("cache") else "cache-off"
        p99 = entry.get("latency", {}).get("p99_ms")
        if not isinstance(p99, (int, float)):
            fail_usage(f"pass {key} in {path} has no latency.p99_ms")
        passes[key] = float(p99)
    if not passes:
        fail_usage(f"{path} has no passes")
    return passes


def main():
    parser = argparse.ArgumentParser(
        description="Fail when serving p99 latency regresses vs a baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_service.json to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_service.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional p99 increase (default 0.25)")
    parser.add_argument("--slack-ms", type=float, default=2.0,
                        help="absolute slack added to every budget, "
                             "absorbing scheduler noise on tiny latencies "
                             "(default 2.0)")
    args = parser.parse_args()
    if args.max_regression < 0.0 or args.slack_ms < 0.0:
        parser.error("--max-regression and --slack-ms must be non-negative")

    baseline = load_passes(args.baseline)
    current = load_passes(args.current)

    failed = False
    for key, base_p99 in sorted(baseline.items()):
        if key not in current:
            print(f"{key}: missing from {args.current}", file=sys.stderr)
            failed = True
            continue
        cur_p99 = current[key]
        budget = base_p99 * (1.0 + args.max_regression) + args.slack_ms
        delta = (cur_p99 / base_p99 - 1.0) * 100.0 if base_p99 > 0.0 else 0.0
        verdict = "OK" if cur_p99 <= budget else "REGRESSION"
        print(f"{key}: p99 {cur_p99:.2f} ms vs baseline {base_p99:.2f} ms "
              f"({delta:+.1f}%), budget {budget:.2f} ms -> {verdict}")
        if cur_p99 > budget:
            failed = True
    for key in sorted(set(current) - set(baseline)):
        print(f"{key}: not in baseline, skipping (p99 {current[key]:.2f} ms)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
