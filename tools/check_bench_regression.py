#!/usr/bin/env python3
"""Guard benchmark regressions in CI.

Two modes:

* Manifest mode (--manifest): run a list of checks, each comparing a
  freshly generated benchmark JSON against a committed baseline. Two
  metric kinds are understood:
    - service_p99:        BENCH_service.json (tools/sgm_serve --out);
                          per-pass latency.p99_ms, higher is worse.
    - benchmark_cpu_time: google-benchmark --benchmark_out JSON;
                          per-benchmark cpu_time, higher is worse.
    - dynamic_speedup:    BENCH_dynamic.json (bench_dynamic_updates);
                          a floor check — the incremental-vs-rebuild
                          speedup must stay at or above the check's
                          min_speedup (default 10), and the per-batch
                          count cross-check must have passed.
  Every check prints a per-metric table and the run fails if any metric
  exceeds its budget.

* Legacy mode (--baseline/--current): the original serving-p99 check,
  kept so existing invocations and docs stay valid.

Budgets combine a fractional threshold with an absolute slack floor:
sub-millisecond baselines are noisy on shared CI runners, so the floor
absorbs scheduler jitter that a pure ratio would flag.

Exit codes: 0 = within budget, 1 = regression, 2 = usage or I/O error.
"""

import argparse
import json
import sys


def fail_usage(message):
    print(f"check_bench_regression: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as err:
        fail_usage(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail_usage(f"{path} is not JSON: {err}")


def load_service_metrics(path):
    """BENCH_service.json -> {pass key: p99 ms}."""
    doc = load_json(path)
    if doc.get("bench") != "service" or not isinstance(doc.get("passes"), list):
        fail_usage(f"{path} is not a BENCH_service.json document "
                   "(expected bench=service with a passes array)")
    metrics = {}
    for entry in doc["passes"]:
        key = "cache-on" if entry.get("cache") else "cache-off"
        p99 = entry.get("latency", {}).get("p99_ms")
        if not isinstance(p99, (int, float)):
            fail_usage(f"pass {key} in {path} has no latency.p99_ms")
        metrics[key] = float(p99)
    if not metrics:
        fail_usage(f"{path} has no passes")
    return metrics


_TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_benchmark_metrics(path):
    """google-benchmark JSON -> {benchmark name: cpu_time ms}."""
    doc = load_json(path)
    if not isinstance(doc.get("benchmarks"), list):
        fail_usage(f"{path} is not a google-benchmark JSON document "
                   "(expected a benchmarks array)")
    metrics = {}
    for entry in doc["benchmarks"]:
        if entry.get("run_type") == "aggregate":
            continue  # compare raw runs, not mean/median/stddev rows
        name = entry.get("name")
        cpu = entry.get("cpu_time")
        unit = entry.get("time_unit", "ns")
        if not isinstance(name, str) or not isinstance(cpu, (int, float)):
            fail_usage(f"benchmark entry without name/cpu_time in {path}")
        if unit not in _TIME_UNIT_TO_MS:
            fail_usage(f"unknown time_unit '{unit}' in {path}")
        metrics[name] = float(cpu) * _TIME_UNIT_TO_MS[unit]
    if not metrics:
        fail_usage(f"{path} has no benchmarks")
    return metrics


_LOADERS = {
    "service_p99": load_service_metrics,
    "benchmark_cpu_time": load_benchmark_metrics,
}


def load_dynamic_doc(path):
    """BENCH_dynamic.json -> the whole document, validated."""
    doc = load_json(path)
    if doc.get("bench") != "dynamic_updates":
        fail_usage(f"{path} is not a BENCH_dynamic.json document "
                   "(expected bench=dynamic_updates)")
    if not isinstance(doc.get("speedup"), (int, float)):
        fail_usage(f"{path} has no numeric speedup")
    return doc


def check_dynamic_speedup(name, baseline_path, current_path, min_speedup):
    """Floor check: speedup >= min_speedup, counts identical. The baseline
    is informational (printed for context), not a ratio budget — speedups
    vary with machine load far more than latencies do."""
    baseline = load_dynamic_doc(baseline_path)
    current = load_dynamic_doc(current_path)
    speedup = float(current["speedup"])
    consistent = current.get("counts_identical") is True
    failed = False
    print(f"== {name} (floor {min_speedup:g}x) ==")
    print(f"  speedup   {speedup:9.1f}x vs baseline "
          f"{float(baseline['speedup']):9.1f}x  floor {min_speedup:g}x  "
          f"{'OK' if speedup >= min_speedup else 'REGRESSION'}")
    if speedup < min_speedup:
        failed = True
    print(f"  counts    {'identical' if consistent else 'DIVERGED'}  "
          f"{'OK' if consistent else 'REGRESSION'}")
    if not consistent:
        failed = True
    return failed


def compare(name, baseline, current, max_regression, slack_ms):
    """Prints the per-metric table for one check; returns True on failure."""
    failed = False
    width = max([len(k) for k in baseline] + [len(k) for k in current] + [6])
    print(f"== {name} (threshold +{max_regression * 100:.0f}%, "
          f"slack {slack_ms:g} ms) ==")
    for key, base in sorted(baseline.items()):
        if key not in current:
            print(f"  {key:<{width}}  missing from current run -> REGRESSION")
            failed = True
            continue
        cur = current[key]
        budget = base * (1.0 + max_regression) + slack_ms
        delta = (cur / base - 1.0) * 100.0 if base > 0.0 else 0.0
        verdict = "OK" if cur <= budget else "REGRESSION"
        print(f"  {key:<{width}}  {cur:9.3f} ms vs {base:9.3f} ms "
              f"({delta:+6.1f}%)  budget {budget:9.3f} ms  {verdict}")
        if cur > budget:
            failed = True
    for key in sorted(set(current) - set(baseline)):
        print(f"  {key:<{width}}  not in baseline, skipping "
              f"({current[key]:.3f} ms)")
    return failed


def run_manifest(path, default_regression, default_slack):
    doc = load_json(path)
    checks = doc.get("checks")
    if not isinstance(checks, list) or not checks:
        fail_usage(f"{path} has no checks array")
    failed = False
    for check in checks:
        kind = check.get("kind")
        if kind not in _LOADERS and kind != "dynamic_speedup":
            fail_usage(f"check {check.get('name', '?')} in {path} has "
                       f"unknown kind '{kind}'")
        for field in ("baseline", "current"):
            if not isinstance(check.get(field), str):
                fail_usage(f"check {check.get('name', '?')} in {path} "
                           f"lacks a '{field}' path")
        if kind == "dynamic_speedup":
            if check_dynamic_speedup(check.get("name", check["current"]),
                                     check["baseline"], check["current"],
                                     float(check.get("min_speedup", 10.0))):
                failed = True
            continue
        loader = _LOADERS[kind]
        if compare(check.get("name", check["current"]),
                   loader(check["baseline"]),
                   loader(check["current"]),
                   float(check.get("max_regression", default_regression)),
                   float(check.get("slack_ms", default_slack))):
            failed = True
    return failed


def main():
    parser = argparse.ArgumentParser(
        description="Fail when benchmark metrics regress vs their baselines.")
    parser.add_argument("--manifest",
                        help="JSON manifest of checks: {checks: [{name, kind, "
                             "baseline, current, max_regression, slack_ms}]}")
    parser.add_argument("--baseline",
                        help="legacy mode: committed BENCH_service.json")
    parser.add_argument("--current",
                        help="legacy mode: freshly generated BENCH_service.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional increase when a check does "
                             "not set its own (default 0.25)")
    parser.add_argument("--slack-ms", type=float, default=2.0,
                        help="absolute slack added to every budget, absorbing "
                             "scheduler noise on tiny latencies (default 2.0)")
    args = parser.parse_args()
    if args.max_regression < 0.0 or args.slack_ms < 0.0:
        parser.error("--max-regression and --slack-ms must be non-negative")

    if args.manifest:
        if args.baseline or args.current:
            parser.error("--manifest and --baseline/--current are exclusive")
        failed = run_manifest(args.manifest, args.max_regression,
                              args.slack_ms)
    else:
        if not args.baseline or not args.current:
            parser.error("either --manifest or both --baseline and --current "
                         "are required")
        failed = compare("serving-p99", load_service_metrics(args.baseline),
                         load_service_metrics(args.current),
                         args.max_regression, args.slack_ms)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
