#!/usr/bin/env python3
"""Checks relative markdown links (and their #anchors) in this repository.

Usage: check_markdown_links.py FILE_OR_DIR...

For every markdown file given (directories are searched recursively), every
inline link `[text](target)` is validated:

  * http(s)/mailto targets are skipped — this is a repo-consistency check,
    not a network crawler;
  * targets resolving outside the repository work tree (located via the
    nearest `.git` above the linking file) are skipped: GitHub badge URLs
    like `../../actions/...` address the forge, not the file tree;
  * relative targets must exist on disk, resolved from the linking file;
  * a `#fragment` (with or without a file part) must name a heading in the
    target markdown file, using GitHub's slug rules (lowercase, punctuation
    stripped, spaces to hyphens, `-1`/`-2`… suffixes for duplicates).

Exit code 0 when every link resolves, 1 otherwise (each failure is printed
as `file:line: message`), 2 on usage errors. Stdlib only.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
# GitHub keeps alphanumerics, hyphens, underscores and spaces; everything
# else (dots, parentheses, backticks, slashes, …) is removed.
SLUG_STRIP_RE = re.compile(r"[^0-9a-zÀ-￿ _-]")


def slugify(heading: str) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = SLUG_STRIP_RE.sub("", text.lower())
    return text.replace(" ", "-")


def heading_anchors(path: str) -> set:
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if not match:
                continue
            slug = slugify(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: str):
    """Yields (line_number, target) for every inline link outside fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield number, match.group(1)


def collect_files(arguments):
    files = []
    for argument in arguments:
        if os.path.isdir(argument):
            for root, _, names in os.walk(argument):
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.lower().endswith((".md", ".markdown"))
                )
        elif os.path.isfile(argument):
            files.append(argument)
        else:
            print(f"error: no such file or directory: {argument}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def work_tree_root(start: str) -> str:
    """Nearest ancestor containing .git, or the filesystem root."""
    current = start
    while True:
        if os.path.exists(os.path.join(current, ".git")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return start
        current = parent


def check_file(path: str, anchor_cache: dict) -> list:
    failures = []
    base = os.path.dirname(os.path.abspath(path))
    root = work_tree_root(base)
    for line, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (os.path.normpath(os.path.join(base, file_part))
                    if file_part else os.path.abspath(path))
        if os.path.commonpath([resolved, root]) != root:
            continue  # forge-web URL (e.g. a CI badge), not a tree path
        if not os.path.exists(resolved):
            failures.append(f"{path}:{line}: broken link: {target}"
                            f" (no such file: {resolved})")
            continue
        if not fragment:
            continue
        if not resolved.lower().endswith((".md", ".markdown")):
            continue  # anchors into non-markdown files are not checkable
        if resolved not in anchor_cache:
            anchor_cache[resolved] = heading_anchors(resolved)
        if fragment.lower() not in anchor_cache[resolved]:
            failures.append(f"{path}:{line}: broken anchor: {target}"
                            f" (no heading '#{fragment}' in {resolved})")
    return failures


def main(arguments) -> int:
    if not arguments:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    anchor_cache = {}
    files = collect_files(arguments)
    for path in files:
        failures.extend(check_file(path, anchor_cache))
    for failure in failures:
        print(failure)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
