// Differential fuzzer driver for the algorithm matrix.
//
// Generate mode (default) draws structured cases from a seeded generator —
// RMAT/Erdős–Rényi data graph × random-walk query × a configuration matrix
// covering all 8 presets, classic/optimized, failing sets, the 4
// intersection kernels, and serial vs parallel execution — and cross-checks
// every configuration against the brute-force reference (match count,
// canonicalized embedding set on small cases, budget/timeout status). On
// disagreement the case is greedily minimized and written as a
// self-contained reproducer; on a crash the un-minimized case survives in
// <out-dir>/inflight.case, pre-written before each oracle run.
//
//   sgm_fuzz [--seed S] [--budget-s T] [--cases N] [--out-dir DIR]
//            [--inject-fault] [--no-minimize] [--verbose]
//   sgm_fuzz --replay FILE [--verbose]
//
// Options:
//   --seed S         base seed; case i uses seed S+i (default 1)
//   --budget-s T     wall-clock budget in seconds; 0 = use --cases
//   --cases N        stop after N cases (default 500 when no budget)
//   --out-dir DIR    where reproducers land (default fuzz-out)
//   --inject-fault   plant an emulated off-by-one (skip-last-root-candidate)
//                    into the first configuration of every case — a
//                    self-test of the oracle + minimizer pipeline
//   --no-minimize    write reproducers without shrinking them first
//   --replay FILE    re-run one reproducer through the oracle and exit
//   --verbose        per-case progress lines
//
// Exit codes: 0 all cases agreed, 1 disagreements found (or replay failed),
// 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "sgm/fuzz/fuzz_case.h"
#include "sgm/fuzz/minimize.h"
#include "sgm/fuzz/oracle.h"
#include "sgm/fuzz/reproducer.h"
#include "sgm/util/timer.h"

namespace {

struct CliArgs {
  uint64_t seed = 1;
  double budget_s = 0.0;
  uint64_t cases = 0;
  std::string out_dir = "fuzz-out";
  std::string replay_path;
  bool inject_fault = false;
  bool no_minimize = false;
  bool verbose = false;
  double update_fraction = -1.0;  // <0 = generator default
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sgm_fuzz [--seed S] [--budget-s T] [--cases N]"
               " [--out-dir DIR] [--inject-fault] [--no-minimize]"
               " [--update-fraction F] [--verbose]\n"
               "       sgm_fuzz --replay FILE [--verbose]\n"
               "run 'sgm_fuzz --help' for details\n");
}

void PrintHelp() {
  std::printf(
      "usage: sgm_fuzz [options]\n"
      "       sgm_fuzz --replay FILE [--verbose]\n"
      "\n"
      "Differential fuzzer: draws structured (data graph, query, config\n"
      "matrix) cases from a seeded generator and cross-checks every\n"
      "configuration — all presets, classic/optimized, failing sets, the\n"
      "intersection kernels, serial vs parallel, direct vs served —\n"
      "against the brute-force reference.\n"
      "\n"
      "options:\n"
      "  --seed S         base seed; case i uses seed S+i (default 1)\n"
      "  --budget-s T     wall-clock budget in seconds; 0 = use --cases\n"
      "  --cases N        stop after N cases (default 500 when no budget)\n"
      "  --out-dir DIR    where reproducers land (default fuzz-out)\n"
      "  --inject-fault   plant an emulated off-by-one into the first\n"
      "                   configuration of every case — a self-test of the\n"
      "                   oracle + minimizer pipeline\n"
      "  --no-minimize    write reproducers without shrinking them first\n"
      "  --replay FILE    re-run one reproducer through the oracle and exit\n"
      "  --update-fraction F\n"
      "                   fraction of cases carrying an update stream (the\n"
      "                   dynamic `upd=` dimension: incremental continuous-\n"
      "                   matching replay is diffed against a cold rematch\n"
      "                   of the final graph); 1 makes every case dynamic\n"
      "                   (default 0.35)\n"
      "  --verbose        per-case progress lines\n"
      "  --help           show this message and exit\n"
      "\n"
      "exit codes: 0 all cases agreed, 1 disagreements found (or replay\n"
      "            failed), 2 usage/IO error\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::optional<std::string> inline_value;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
    }
    const auto next = [&]() -> std::optional<std::string> {
      if (inline_value.has_value()) return inline_value;
      if (i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (flag == "--help") {
      PrintHelp();
      std::exit(0);
    } else if (flag == "--seed") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->seed = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--budget-s") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->budget_s = std::strtod(value->c_str(), nullptr);
    } else if (flag == "--cases") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->cases = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--out-dir") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->out_dir = *value;
    } else if (flag == "--replay") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->replay_path = *value;
    } else if (flag == "--update-fraction") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->update_fraction = std::strtod(value->c_str(), nullptr);
      if (args->update_fraction < 0.0 || args->update_fraction > 1.0) {
        std::fprintf(stderr, "--update-fraction must be in [0, 1]\n");
        return false;
      }
    } else if (flag == "--inject-fault") {
      args->inject_fault = true;
    } else if (flag == "--no-minimize") {
      args->no_minimize = true;
    } else if (flag == "--verbose") {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void PrintOutcomes(const sgm::fuzz::OracleResult& result) {
  std::printf("  reference: %llu matches\n",
              static_cast<unsigned long long>(result.reference_count));
  for (const sgm::fuzz::ConfigOutcome& outcome : result.outcomes) {
    std::printf("  %-32s %8llu matches%s%s\n", outcome.name.c_str(),
                static_cast<unsigned long long>(outcome.match_count),
                outcome.reached_limit ? " [limit]" : "",
                outcome.timed_out ? " [timeout]" : "");
  }
  if (result.dynamic_batches > 0) {
    std::printf("  dynamic: %llu batches, +%llu / -%llu matches\n",
                static_cast<unsigned long long>(result.dynamic_batches),
                static_cast<unsigned long long>(result.dynamic_additions),
                static_cast<unsigned long long>(result.dynamic_retractions));
  }
}

int Replay(const CliArgs& args) {
  std::string error;
  const auto reproducer =
      sgm::fuzz::LoadReproducerFile(args.replay_path, &error);
  if (!reproducer.has_value()) {
    std::fprintf(stderr, "failed to load reproducer: %s\n", error.c_str());
    return 2;
  }
  const sgm::fuzz::OracleResult result =
      sgm::fuzz::RunOracle(reproducer->fuzz_case);
  std::printf("replay %s: verdict=%s", args.replay_path.c_str(),
              sgm::fuzz::VerdictKindName(result.kind));
  if (!result.detail.empty()) std::printf(" (%s)", result.detail.c_str());
  std::printf("\n");
  PrintOutcomes(result);
  return result.Failed() ? 1 : 0;
}

int Generate(const CliArgs& args) {
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", args.out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  const std::string inflight = args.out_dir + "/inflight.case";
  if (std::filesystem::exists(inflight)) {
    std::fprintf(stderr,
                 "note: %s exists — a previous run crashed mid-case;"
                 " replay it with --replay before deleting\n",
                 inflight.c_str());
  }

  const uint64_t case_budget =
      args.cases > 0 ? args.cases : (args.budget_s > 0.0 ? ~0ULL : 500);
  sgm::Timer timer;
  uint64_t cases_run = 0;
  uint64_t failures = 0;
  for (uint64_t i = 0; i < case_budget; ++i) {
    if (args.budget_s > 0.0 &&
        timer.ElapsedMillis() >= args.budget_s * 1000.0) {
      break;
    }
    const uint64_t seed = args.seed + i;
    sgm::fuzz::CaseGenOptions gen_options;
    if (args.update_fraction >= 0.0) {
      gen_options.update_fraction = args.update_fraction;
    }
    sgm::fuzz::FuzzCase fuzz_case = sgm::fuzz::GenerateCase(seed, gen_options);
    if (args.inject_fault && !fuzz_case.configs.empty()) {
      fuzz_case.configs[0].inject_fault = true;
      fuzz_case.configs[0].threads = 1;  // The hook is a serial-engine knob.
    }

    // Pre-write the case so a crash inside the oracle leaves a reproducer.
    std::string error;
    sgm::fuzz::Reproducer snapshot{fuzz_case, sgm::fuzz::VerdictKind::kAgree};
    if (!sgm::fuzz::SaveReproducerFile(snapshot, inflight, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", inflight.c_str(),
                   error.c_str());
      return 2;
    }

    const sgm::fuzz::OracleResult result = sgm::fuzz::RunOracle(fuzz_case);
    ++cases_run;
    if (args.verbose || result.Failed()) {
      std::printf("case seed=%llu |V(G)|=%u |E(G)|=%u |V(q)|=%u budget=%llu"
                  " upd=%zu verdict=%s\n",
                  static_cast<unsigned long long>(seed),
                  fuzz_case.data.vertex_count(), fuzz_case.data.edge_count(),
                  fuzz_case.query.vertex_count(),
                  static_cast<unsigned long long>(fuzz_case.max_matches),
                  fuzz_case.updates.op_count(),
                  sgm::fuzz::VerdictKindName(result.kind));
    }
    if (result.Failed()) {
      ++failures;
      std::printf("  %s\n", result.detail.c_str());
      sgm::fuzz::FuzzCase to_write = fuzz_case;
      if (!args.no_minimize) {
        sgm::fuzz::MinimizeStats stats;
        to_write = sgm::fuzz::MinimizeCase(fuzz_case, {}, {}, &stats);
        std::printf("  minimized in %u oracle runs: |V(G)|=%u |E(G)|=%u"
                    " |V(q)|=%u configs=%zu\n",
                    stats.oracle_runs, to_write.data.vertex_count(),
                    to_write.data.edge_count(),
                    to_write.query.vertex_count(), to_write.configs.size());
      }
      const sgm::fuzz::OracleResult final_verdict =
          sgm::fuzz::RunOracle(to_write);
      const std::string path =
          args.out_dir + "/repro-seed" + std::to_string(seed) + ".case";
      sgm::fuzz::Reproducer repro{std::move(to_write), final_verdict.kind};
      if (!sgm::fuzz::SaveReproducerFile(repro, path, &error)) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
      }
      std::printf("  reproducer: %s\n", path.c_str());
    }
  }
  std::filesystem::remove(inflight, ec);

  const double elapsed_s = timer.ElapsedMillis() / 1000.0;
  std::printf("sgm_fuzz: %llu cases in %.1fs (%.1f cases/s), %llu"
              " disagreement(s)\n",
              static_cast<unsigned long long>(cases_run), elapsed_s,
              elapsed_s > 0 ? static_cast<double>(cases_run) / elapsed_s : 0.0,
              static_cast<unsigned long long>(failures));
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (!args.replay_path.empty()) return Replay(args);
  return Generate(args);
}
