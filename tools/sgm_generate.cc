// Command-line dataset generator.
//
//   sgm_generate --out g.graph --vertices N --edges M [options]
//
// Options:
//   --labels L        number of distinct labels (default 16)
//   --model NAME      rmat | er  (default rmat, the paper's generator)
//   --seed S          PRNG seed (default 1)
//   --queries K       additionally extract K queries per configured set
//   --query-size Q    query vertex count (default 8)
//   --density D       any | dense | sparse  (default any)
//   --query-prefix P  write queries to P_<i>.graph
//   --update-stream F additionally write a replayable update stream to F
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/generators.h"
#include "sgm/graph/graph_io.h"
#include "sgm/graph/query_generator.h"

namespace {

struct CliArgs {
  std::string out_path;
  uint32_t vertices = 0;
  uint32_t edges = 0;
  uint32_t labels = 16;
  std::string model = "rmat";
  uint64_t seed = 1;
  uint32_t queries = 0;
  uint32_t query_size = 8;
  std::string density = "any";
  std::string query_prefix = "query";
  std::string update_stream_path;
  uint32_t update_batches = 16;
  uint32_t update_ops = 8;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sgm_generate --out g.graph --vertices N --edges M"
               " [--labels L] [--model rmat|er] [--seed S] [--queries K]"
               " [--query-size Q] [--density any|dense|sparse]"
               " [--query-prefix P] [--update-stream F]\n"
               "run 'sgm_generate --help' for details\n");
}

void PrintHelp() {
  std::printf(
      "usage: sgm_generate --out g.graph --vertices N --edges M [options]\n"
      "\n"
      "Generates a synthetic labeled data graph (and optionally a query\n"
      "set extracted from it by random walk, the paper's protocol).\n"
      "\n"
      "required:\n"
      "  --out FILE          output data graph path\n"
      "  --vertices N        number of vertices\n"
      "  --edges M           number of undirected edges\n"
      "options:\n"
      "  --labels L          number of distinct labels (default 16)\n"
      "  --model NAME        rmat|er generator model (default rmat, the\n"
      "                      paper's generator)\n"
      "  --seed S            PRNG seed (default 1)\n"
      "  --queries K         additionally extract K query graphs by random\n"
      "                      walk\n"
      "  --query-size Q      vertices per extracted query (default 8)\n"
      "  --density D         any|dense|sparse query density class\n"
      "                      (default any)\n"
      "  --query-prefix P    query output path prefix; query i lands in\n"
      "                      P_<i>.graph (default 'query')\n"
      "  --update-stream F   additionally write a seeded, replayable\n"
      "                      insert/delete stream (update_batch.h text\n"
      "                      format) valid against the generated graph,\n"
      "                      for sgm_serve --updates\n"
      "  --update-batches N  batches in the update stream (default 16)\n"
      "  --update-ops N      max ops per stream batch (default 8)\n"
      "  --help              show this message and exit\n"
      "\n"
      "exit codes: 0 ok, 1 write error, 2 usage error\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--help") {
      PrintHelp();
      std::exit(0);
    } else if (flag == "--out" && (value = next())) {
      args->out_path = value;
    } else if (flag == "--vertices" && (value = next())) {
      args->vertices = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--edges" && (value = next())) {
      args->edges = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--labels" && (value = next())) {
      args->labels = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--model" && (value = next())) {
      args->model = value;
    } else if (flag == "--seed" && (value = next())) {
      args->seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--queries" && (value = next())) {
      args->queries = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--query-size" && (value = next())) {
      args->query_size =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--density" && (value = next())) {
      args->density = value;
    } else if (flag == "--query-prefix" && (value = next())) {
      args->query_prefix = value;
    } else if (flag == "--update-stream" && (value = next())) {
      args->update_stream_path = value;
    } else if (flag == "--update-batches" && (value = next())) {
      args->update_batches =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--update-ops" && (value = next())) {
      args->update_ops =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->out_path.empty() && args->vertices >= 2 && args->edges >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  sgm::Prng prng(args.seed);
  sgm::Graph graph;
  if (args.model == "rmat") {
    graph = sgm::GenerateRmat(args.vertices, args.edges, args.labels, &prng);
  } else if (args.model == "er") {
    graph =
        sgm::GenerateErdosRenyi(args.vertices, args.edges, args.labels, &prng);
  } else {
    std::fprintf(stderr, "unknown model: %s\n", args.model.c_str());
    return 2;
  }

  std::string error;
  if (!sgm::SaveGraphFile(graph, args.out_path, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: |V|=%u |E|=%u |Sigma|=%u avg-degree=%.2f\n",
              args.out_path.c_str(), graph.vertex_count(), graph.edge_count(),
              graph.label_count(), graph.average_degree());

  if (args.queries > 0) {
    sgm::QueryDensity density = sgm::QueryDensity::kAny;
    if (args.density == "dense") density = sgm::QueryDensity::kDense;
    if (args.density == "sparse") density = sgm::QueryDensity::kSparse;
    const auto queries = sgm::GenerateQuerySet(graph, args.query_size,
                                               density, args.queries, &prng);
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::string path =
          args.query_prefix + "_" + std::to_string(i) + ".graph";
      if (!sgm::SaveGraphFile(queries[i], path, &error)) {
        std::fprintf(stderr, "write failed: %s\n", error.c_str());
        return 1;
      }
    }
    std::printf("wrote %zu %s queries of size %u (prefix %s)\n",
                queries.size(), args.density.c_str(), args.query_size,
                args.query_prefix.c_str());
  }

  if (!args.update_stream_path.empty()) {
    sgm::dynamic::StreamGenOptions stream_options;
    stream_options.batches = args.update_batches;
    stream_options.max_ops_per_batch = args.update_ops;
    const sgm::dynamic::UpdateStream stream =
        sgm::dynamic::GenerateUpdateStream(graph, stream_options, &prng);
    if (!sgm::dynamic::SaveUpdateStreamFile(stream, args.update_stream_path,
                                            &error)) {
      std::fprintf(stderr, "write failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s: %zu batches, %zu update ops\n",
                args.update_stream_path.c_str(), stream.batches.size(),
                stream.op_count());
  }
  return 0;
}
