// Batch driver for the serving layer (sgm/service/service.h): loads one
// data graph, reads a workload file of queries, and replays the workload
// against a MatchService with configurable concurrency and repeat factor,
// reporting throughput, latency percentiles and plan-cache effectiveness.
//
//   sgm_serve --data g.graph --workload queries.txt [options]
//
// Workload file: one entry per line. Blank lines and lines starting with
// '#' are ignored. Each entry is either
//   * a path to a query graph file, or
//   * an inline generator spec "gen size=N [density=any|dense|sparse]
//     [seed=S]" extracting a random-walk query from the data graph
//     (deterministic per seed, so replays are reproducible).
//
// The full workload (entries x repeat) is submitted with at most
// --concurrency requests in flight; the service executes them on --workers
// threads. --compare-cache runs the workload twice — plan cache enabled
// then disabled — verifies both passes return identical match counts, and
// reports the throughput speedup.
//
// With --updates STREAM the driver switches to continuous-matching replay
// (DESIGN.md §14): every workload query is registered as a continuous
// query, the update stream's batches are applied one by one, and each
// batch prints (and records in --out) its exact match delta — embeddings
// that appeared and embeddings that were retracted — plus the apply /
// delta-enumeration time split. After the replay the workload runs once
// as ordinary requests against the final graph, which also verifies that
// the incrementally maintained match sets agree with cold re-matching.
//
// Exit codes: 0 ok, 1 load/workload error, 2 usage error, 3 cache/no-cache
// match counts diverged under --compare-cache, 4 incremental/rematch
// divergence under --updates.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sgm/dynamic/continuous.h"
#include "sgm/dynamic/update_batch.h"
#include "sgm/graph/graph_io.h"
#include "sgm/graph/query_generator.h"
#include "sgm/obs/json.h"
#include "sgm/obs/metrics.h"
#include "sgm/obs/run_report.h"
#include "sgm/obs/slow_query_log.h"
#include "sgm/service/service.h"
#include "sgm/util/prng.h"
#include "sgm/util/timer.h"

namespace {

struct CliArgs {
  std::string data_path;
  std::string workload_path;
  uint32_t workers = 4;
  uint32_t concurrency = 8;
  uint32_t repeat = 1;
  uint32_t shards = 0;
  sgm::shard::Partitioner partitioner = sgm::shard::Partitioner::kGreedy;
  size_t cache_mb = 256;
  bool compare_cache = false;
  uint64_t max_matches = 100000;
  double deadline_ms = 0.0;
  double time_limit_ms = 300000.0;
  uint32_t max_queue = 0;
  std::string out_path = "BENCH_service.json";
  std::string report_path;
  std::string metrics_out;
  uint32_t metrics_interval_ms = 0;
  double slow_query_ms = 100.0;
  std::string slow_query_log_path;
  uint64_t seed = 1;
  std::string updates_path;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sgm_serve --data g.graph --workload FILE"
               " [--workers N] [--concurrency K] [--repeat R]"
               " [--shards K] [--partitioner P]"
               " [--cache-mb MB] [--no-cache] [--compare-cache]"
               " [--max-matches N] [--deadline-ms N] [--time-limit-ms N]"
               " [--max-queue N] [--out FILE.json] [--report FILE.json]"
               " [--metrics-out FILE] [--metrics-interval-ms N]"
               " [--slow-query-ms N] [--slow-query-log FILE]"
               " [--seed S] [--updates STREAM]\n"
               "run 'sgm_serve --help' for details\n");
}

void PrintHelp() {
  std::printf(
      "usage: sgm_serve --data g.graph --workload FILE [options]\n"
      "\n"
      "Replays a workload of subgraph-match queries against an in-process\n"
      "MatchService and writes a throughput/latency report.\n"
      "\n"
      "required:\n"
      "  --data FILE         data graph to serve\n"
      "  --workload FILE     workload file: one query path or inline\n"
      "                      'gen size=N [density=D] [seed=S]' spec per\n"
      "                      line; '#' starts a comment\n"
      "options:\n"
      "  --workers N         service worker threads (default 4)\n"
      "  --concurrency K     max requests in flight (default 8)\n"
      "  --repeat R          replay each workload entry R times (default 1)\n"
      "  --shards K          serve against K data-graph shards with a\n"
      "                      boundary merge pass; sharded requests bypass\n"
      "                      the plan cache (default 0 = monolithic)\n"
      "  --partitioner P     hash|greedy — shard partitioner (default\n"
      "                      greedy)\n"
      "  --cache-mb MB       plan cache memory budget in MiB (default 256)\n"
      "  --no-cache          disable the plan cache (same as --cache-mb 0)\n"
      "  --compare-cache     run cache-on and cache-off passes, verify\n"
      "                      identical match counts, report the speedup\n"
      "  --max-matches N     per-request match budget (default 100000)\n"
      "  --deadline-ms N     per-request deadline incl. queueing\n"
      "                      (default 0 = none)\n"
      "  --time-limit-ms N   per-request enumeration limit (default 300000)\n"
      "  --max-queue N       admission queue bound; overflow is rejected\n"
      "                      (default 0 = unbounded)\n"
      "  --out FILE          benchmark JSON output\n"
      "                      (default BENCH_service.json)\n"
      "  --report FILE       RunReport JSON of the last served request\n"
      "  --metrics-out FILE  write a service metrics snapshot on exit:\n"
      "                      Prometheus text when FILE ends in .prom,\n"
      "                      JSON otherwise\n"
      "  --metrics-interval-ms N\n"
      "                      rewrite --metrics-out every N ms while the\n"
      "                      workload runs (default 0 = final snapshot only)\n"
      "  --slow-query-ms N   slow-query threshold for --slow-query-log\n"
      "                      (default 100)\n"
      "  --slow-query-log FILE\n"
      "                      append a JSONL record (with a sgm_fuzz --replay\n"
      "                      reproducer) for each request at or above the\n"
      "                      slow-query threshold\n"
      "  --seed S            base seed for 'gen' workload entries without\n"
      "                      their own (default 1)\n"
      "  --updates STREAM    continuous-matching replay: register every\n"
      "                      workload query as a continuous query, apply\n"
      "                      the update stream (the sgm_generate\n"
      "                      update-stream format) batch by batch and\n"
      "                      report each batch's exact match delta; the\n"
      "                      workload then runs once against the final\n"
      "                      graph and the incrementally maintained match\n"
      "                      sets are checked against cold re-matching.\n"
      "                      Incompatible with --shards and\n"
      "                      --compare-cache\n"
      "  --help              show this message and exit\n"
      "\n"
      "exit codes: 0 ok, 1 load/workload error, 2 usage error,\n"
      "            3 match counts diverged under --compare-cache,\n"
      "            4 incremental/rematch divergence under --updates\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::optional<std::string> inline_value;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
    }
    const auto next = [&]() -> std::optional<std::string> {
      if (inline_value.has_value()) return inline_value;
      if (i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    std::optional<std::string> value;
    if (flag == "--help") {
      PrintHelp();
      std::exit(0);
    } else if (flag == "--data" && (value = next())) {
      args->data_path = *value;
    } else if (flag == "--workload" && (value = next())) {
      args->workload_path = *value;
    } else if (flag == "--workers" && (value = next())) {
      args->workers =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--concurrency" && (value = next())) {
      args->concurrency =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--repeat" && (value = next())) {
      args->repeat =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--shards" && (value = next())) {
      args->shards =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--partitioner" && (value = next())) {
      const auto partitioner = sgm::shard::ParsePartitioner(*value);
      if (!partitioner.has_value()) {
        std::fprintf(stderr, "unknown partitioner: %s\n", value->c_str());
        return false;
      }
      args->partitioner = *partitioner;
    } else if (flag == "--cache-mb" && (value = next())) {
      args->cache_mb = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--no-cache") {
      args->cache_mb = 0;
    } else if (flag == "--compare-cache") {
      args->compare_cache = true;
    } else if (flag == "--max-matches" && (value = next())) {
      args->max_matches = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--deadline-ms" && (value = next())) {
      args->deadline_ms = std::strtod(value->c_str(), nullptr);
    } else if (flag == "--time-limit-ms" && (value = next())) {
      args->time_limit_ms = std::strtod(value->c_str(), nullptr);
    } else if (flag == "--max-queue" && (value = next())) {
      args->max_queue =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--out" && (value = next())) {
      args->out_path = *value;
    } else if (flag == "--report" && (value = next())) {
      args->report_path = *value;
    } else if (flag == "--metrics-out" && (value = next())) {
      args->metrics_out = *value;
    } else if (flag == "--metrics-interval-ms" && (value = next())) {
      args->metrics_interval_ms =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--slow-query-ms" && (value = next())) {
      args->slow_query_ms = std::strtod(value->c_str(), nullptr);
    } else if (flag == "--slow-query-log" && (value = next())) {
      args->slow_query_log_path = *value;
    } else if (flag == "--seed" && (value = next())) {
      args->seed = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--updates" && (value = next())) {
      args->updates_path = *value;
    } else {
      std::fprintf(stderr, "unknown flag or missing value: %s\n",
                   flag.c_str());
      return false;
    }
  }
  if (args->workers == 0 || args->concurrency == 0 || args->repeat == 0) {
    std::fprintf(stderr,
                 "--workers, --concurrency and --repeat must be positive\n");
    return false;
  }
  if (args->metrics_interval_ms > 0 && args->metrics_out.empty()) {
    std::fprintf(stderr, "--metrics-interval-ms needs --metrics-out\n");
    return false;
  }
  if (!args->updates_path.empty() &&
      (args->shards > 1 || args->compare_cache)) {
    std::fprintf(stderr,
                 "--updates is incompatible with --shards and"
                 " --compare-cache\n");
    return false;
  }
  return !args->data_path.empty() && !args->workload_path.empty();
}

/// Parses one "gen size=N [density=D] [seed=S]" workload entry and extracts
/// the query from the data graph. Returns nullopt with a message on error.
std::optional<sgm::Graph> QueryFromGenSpec(const std::string& line,
                                           const sgm::Graph& data,
                                           uint64_t default_seed,
                                           std::string* error) {
  uint32_t size = 0;
  sgm::QueryDensity density = sgm::QueryDensity::kAny;
  uint64_t seed = default_seed;
  std::istringstream stream(line);
  std::string token;
  stream >> token;  // consume "gen"
  while (stream >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "bad gen spec token '" + token + "'";
      return std::nullopt;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "size") {
      size = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "density") {
      if (value == "any") {
        density = sgm::QueryDensity::kAny;
      } else if (value == "dense") {
        density = sgm::QueryDensity::kDense;
      } else if (value == "sparse") {
        density = sgm::QueryDensity::kSparse;
      } else {
        *error = "bad gen density '" + value + "'";
        return std::nullopt;
      }
    } else if (key == "seed") {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      *error = "unknown gen spec key '" + key + "'";
      return std::nullopt;
    }
  }
  if (size == 0) {
    *error = "gen spec needs size=N";
    return std::nullopt;
  }
  sgm::Prng prng(seed);
  auto query = sgm::ExtractQuery(data, size, density, &prng);
  if (!query.has_value()) {
    *error = "gen spec produced no query (density unsatisfiable?)";
  }
  return query;
}

/// Loads the workload: one query graph per (non-comment) line.
std::optional<std::vector<sgm::Graph>> LoadWorkload(const CliArgs& args,
                                                    const sgm::Graph& data) {
  std::ifstream file(args.workload_path);
  if (!file) {
    std::fprintf(stderr, "cannot open workload file %s\n",
                 args.workload_path.c_str());
    return std::nullopt;
  }
  std::vector<sgm::Graph> queries;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    line = line.substr(start);
    std::string error;
    if (line.rfind("gen ", 0) == 0 || line == "gen") {
      // Entry index seeds unseeded specs so two identical specs still make
      // distinct queries.
      auto query = QueryFromGenSpec(line, data,
                                    args.seed + queries.size(), &error);
      if (!query.has_value()) {
        std::fprintf(stderr, "%s:%llu: %s\n", args.workload_path.c_str(),
                     static_cast<unsigned long long>(line_number),
                     error.c_str());
        return std::nullopt;
      }
      queries.push_back(std::move(*query));
    } else {
      auto query = sgm::LoadGraphFile(line, &error);
      if (!query.has_value()) {
        std::fprintf(stderr, "%s:%llu: failed to load %s: %s\n",
                     args.workload_path.c_str(),
                     static_cast<unsigned long long>(line_number),
                     line.c_str(), error.c_str());
        return std::nullopt;
      }
      queries.push_back(std::move(*query));
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "workload file %s holds no queries\n",
                 args.workload_path.c_str());
    return std::nullopt;
  }
  return queries;
}

struct PassResult {
  bool cache_enabled = false;
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  // sorted on finish
  std::vector<uint64_t> match_counts;  // per request, submission order
  uint64_t status_counts[4] = {0, 0, 0, 0};  // by RequestStatus value
  sgm::service::ServiceStats stats;
  /// Last completed response + its query index, for --report.
  sgm::service::MatchResponse last_response;
  size_t last_query = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t low = static_cast<size_t>(rank);
  const size_t high = std::min(low + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(low);
  return sorted[low] * (1.0 - frac) + sorted[high] * frac;
}

/// Replays the whole workload (queries x repeat) against one fresh service
/// with at most args.concurrency requests in flight. Every pass instruments
/// the process-wide metrics registry (counters accumulate across passes).
PassResult RunPass(const CliArgs& args, const sgm::Graph& data,
                   const std::vector<sgm::Graph>& queries, bool cache_enabled,
                   sgm::obs::SlowQueryLog* slow_query_log) {
  sgm::service::ServiceOptions service_options;
  service_options.worker_count = args.workers;
  service_options.shards = args.shards;
  service_options.shard_partitioner = args.partitioner;
  service_options.plan_cache_budget_bytes =
      cache_enabled ? args.cache_mb << 20 : 0;
  service_options.max_queue_depth = args.max_queue;
  service_options.slow_query_log = slow_query_log;
  sgm::service::MatchService service(data, service_options);

  PassResult pass;
  pass.cache_enabled = cache_enabled;
  const size_t total = queries.size() * args.repeat;
  pass.match_counts.assign(total, 0);
  pass.latencies_ms.reserve(total);

  struct InFlight {
    std::future<sgm::service::MatchResponse> future;
    size_t request_index;
  };
  std::deque<InFlight> in_flight;
  const auto drain_one = [&] {
    InFlight front = std::move(in_flight.front());
    in_flight.pop_front();
    sgm::service::MatchResponse response = front.future.get();
    pass.latencies_ms.push_back(response.service_ms);
    pass.match_counts[front.request_index] = response.engine.match_count;
    ++pass.status_counts[static_cast<size_t>(response.status)];
    pass.last_response = std::move(response);
    pass.last_query = front.request_index % queries.size();
  };

  sgm::Timer wall;
  // Interleave the entries (q0, q1, ..., q0, q1, ...) so cache hits come
  // from genuinely repeated queries, not from back-to-back duplicates.
  for (size_t request = 0; request < total; ++request) {
    while (in_flight.size() >= args.concurrency) drain_one();
    sgm::service::MatchRequest match_request;
    match_request.query = queries[request % queries.size()];
    match_request.options.max_matches = args.max_matches;
    match_request.options.time_limit_ms = args.time_limit_ms;
    match_request.deadline_ms = args.deadline_ms;
    in_flight.push_back(
        InFlight{service.Submit(std::move(match_request)), request});
  }
  while (!in_flight.empty()) drain_one();
  pass.wall_ms = wall.ElapsedMillis();
  pass.stats = service.Stats();
  std::sort(pass.latencies_ms.begin(), pass.latencies_ms.end());
  return pass;
}

sgm::obs::Json PassToJson(const PassResult& pass) {
  using sgm::obs::Json;
  Json json = Json::Object();
  json.Set("cache", Json::Bool(pass.cache_enabled));
  json.Set("wall_ms", Json::Number(pass.wall_ms));
  const size_t requests = pass.match_counts.size();
  json.Set("requests", Json::Number(uint64_t{requests}));
  json.Set("throughput_qps",
           Json::Number(pass.wall_ms > 0.0
                            ? 1000.0 * static_cast<double>(requests) /
                                  pass.wall_ms
                            : 0.0));

  Json latency = Json::Object();
  double sum = 0.0;
  for (const double ms : pass.latencies_ms) sum += ms;
  latency.Set("mean_ms",
              Json::Number(requests > 0
                               ? sum / static_cast<double>(requests)
                               : 0.0));
  latency.Set("p50_ms", Json::Number(Percentile(pass.latencies_ms, 0.50)));
  latency.Set("p90_ms", Json::Number(Percentile(pass.latencies_ms, 0.90)));
  latency.Set("p99_ms", Json::Number(Percentile(pass.latencies_ms, 0.99)));
  latency.Set("max_ms", Json::Number(pass.latencies_ms.empty()
                                         ? 0.0
                                         : pass.latencies_ms.back()));
  json.Set("latency", std::move(latency));

  Json status = Json::Object();
  status.Set("ok", Json::Number(pass.status_counts[0]));
  status.Set("timeout", Json::Number(pass.status_counts[1]));
  status.Set("cancelled", Json::Number(pass.status_counts[2]));
  status.Set("rejected", Json::Number(pass.status_counts[3]));
  json.Set("status", std::move(status));

  json.Set("total_matches", Json::Number(pass.stats.total_matches));

  Json cache = Json::Object();
  cache.Set("hits", Json::Number(pass.stats.plan_cache.hits));
  cache.Set("misses", Json::Number(pass.stats.plan_cache.misses));
  cache.Set("hit_rate", Json::Number(pass.stats.plan_cache.hit_rate()));
  cache.Set("evictions", Json::Number(pass.stats.plan_cache.evictions));
  cache.Set("entries", Json::Number(uint64_t{pass.stats.plan_cache.entries}));
  cache.Set("memory_bytes",
            Json::Number(uint64_t{pass.stats.plan_cache.memory_bytes}));
  json.Set("plan_cache", std::move(cache));

  Json queue = Json::Object();
  queue.Set("max_depth", Json::Number(uint64_t{pass.stats.max_queue_depth}));
  queue.Set("mean_queue_ms",
            Json::Number(requests > 0
                             ? pass.stats.total_queue_ms /
                                   static_cast<double>(requests)
                             : 0.0));
  json.Set("queue", std::move(queue));
  return json;
}

/// Writes one metrics snapshot: Prometheus text exposition when the path
/// ends in ".prom", a pretty-printed JSON snapshot otherwise.
bool WriteMetricsSnapshot(const std::string& path) {
  const sgm::obs::MetricsRegistry& registry =
      sgm::obs::MetricsRegistry::Default();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  if (prometheus) {
    out << registry.RenderPrometheus();
  } else {
    out << registry.ToJson().Dump(2) << "\n";
  }
  return static_cast<bool>(out);
}

/// Background writer that re-renders --metrics-out every interval while the
/// workload runs (a file-based stand-in for a Prometheus scrape endpoint;
/// point a textfile collector at it).
class MetricsSnapshotWriter {
 public:
  MetricsSnapshotWriter(std::string path, uint32_t interval_ms)
      : path_(std::move(path)) {
    if (interval_ms == 0) return;
    thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_) {
        done_.wait_for(lock, std::chrono::milliseconds(interval_ms));
        if (stop_) return;
        WriteMetricsSnapshot(path_);
      }
    });
  }

  ~MetricsSnapshotWriter() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    done_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  const std::string path_;
  std::mutex mutex_;
  std::condition_variable done_;
  bool stop_ = false;
  std::thread thread_;
};

/// Submits one embedding-collecting request for `query` and returns the
/// embeddings as a set. Sets *truncated when the request hit max_matches
/// (the divergence check is skipped for such queries — the maintained set
/// is exact, the rematch is not).
std::optional<std::set<std::vector<sgm::Vertex>>> CollectEmbeddings(
    sgm::service::MatchService& service, const sgm::Graph& query,
    const CliArgs& args, bool* truncated) {
  sgm::service::MatchRequest request;
  request.query = query;
  request.options.max_matches = args.max_matches;
  request.options.time_limit_ms = args.time_limit_ms;
  request.collect_embeddings = true;
  sgm::service::MatchResponse response = service.Match(std::move(request));
  if (response.status != sgm::service::RequestStatus::kOk) {
    std::fprintf(stderr, "request failed: %s\n", response.error.c_str());
    return std::nullopt;
  }
  *truncated = response.engine.enumerate.reached_match_limit ||
               response.engine.enumerate.timed_out;
  return std::set<std::vector<sgm::Vertex>>(response.embeddings.begin(),
                                            response.embeddings.end());
}

/// The --updates mode (see file comment): continuous-matching replay with
/// per-batch delta reports and a final incremental-vs-rematch check.
int RunUpdateReplay(const CliArgs& args, const sgm::Graph& data,
                    const std::vector<sgm::Graph>& queries) {
  using sgm::obs::Json;
  std::string error;
  const auto stream =
      sgm::dynamic::LoadUpdateStreamFile(args.updates_path, &error);
  if (!stream.has_value()) {
    std::fprintf(stderr, "failed to load update stream: %s\n", error.c_str());
    return 1;
  }

  sgm::service::ServiceOptions service_options;
  service_options.worker_count = args.workers;
  service_options.plan_cache_budget_bytes = args.cache_mb << 20;
  sgm::service::MatchService service(data, service_options);

  // Register every workload query as a continuous query and seed its match
  // set from a cold run against the initial graph.
  std::vector<uint64_t> query_ids(queries.size(), 0);
  std::map<uint64_t, size_t> by_id;
  std::vector<std::set<std::vector<sgm::Vertex>>> matches(queries.size());
  std::vector<bool> truncated(queries.size(), false);
  for (size_t q = 0; q < queries.size(); ++q) {
    query_ids[q] = service.RegisterContinuousQuery(queries[q], &error);
    if (query_ids[q] == 0) {
      std::fprintf(stderr, "workload entry %zu rejected: %s\n", q,
                   error.c_str());
      return 1;
    }
    by_id[query_ids[q]] = q;
    bool limit_hit = false;
    auto initial = CollectEmbeddings(service, queries[q], args, &limit_hit);
    if (!initial.has_value()) return 1;
    matches[q] = std::move(*initial);
    truncated[q] = limit_hit;
    if (limit_hit) {
      std::fprintf(stderr,
                   "warning: query %zu hit the match budget; its divergence"
                   " check is skipped (raise --max-matches)\n",
                   q);
    }
  }
  std::printf("registered %zu continuous quer%s; replaying %zu batches"
              " (%zu ops) from %s\n",
              queries.size(), queries.size() == 1 ? "y" : "ies",
              stream->batches.size(), stream->op_count(),
              args.updates_path.c_str());

  // Replay, folding each batch's exact delta into the maintained sets.
  Json batches_json = Json::Array();
  uint64_t total_additions = 0;
  uint64_t total_retractions = 0;
  double total_apply_ms = 0.0;
  double total_enumerate_ms = 0.0;
  bool consistent = true;
  for (size_t b = 0; b < stream->batches.size(); ++b) {
    const sgm::service::UpdateReport report =
        service.ApplyUpdates(stream->batches[b]);
    if (!report.applied) {
      std::fprintf(stderr, "batch %zu rejected: %s\n", b,
                   report.error.c_str());
      return 1;
    }
    uint64_t additions = 0;
    uint64_t retractions = 0;
    for (const sgm::dynamic::MatchDelta& delta : report.deltas) {
      additions += delta.additions;
      retractions += delta.retractions;
      const size_t q = by_id.at(delta.query_id);
      // A truncated seed set cannot absorb exact deltas (retractions may
      // hit embeddings the budget cut off); its check is skipped anyway.
      if (truncated[q]) continue;
      auto& set = matches[q];
      for (const sgm::dynamic::DeltaRecord& record : delta.records) {
        if (record.addition) {
          consistent &= set.insert(record.embedding).second;
        } else {
          consistent &= set.erase(record.embedding) > 0;
        }
      }
    }
    total_additions += additions;
    total_retractions += retractions;
    total_apply_ms += report.apply_ms;
    total_enumerate_ms += report.enumerate_ms;
    std::printf(
        "batch %zu: epoch %llu, %u ops, +%llu matches, -%llu matches,"
        " apply %.3f ms, delta-enumerate %.3f ms\n",
        b, static_cast<unsigned long long>(report.epoch), report.ops_applied,
        static_cast<unsigned long long>(additions),
        static_cast<unsigned long long>(retractions), report.apply_ms,
        report.enumerate_ms);

    Json batch_json = Json::Object();
    batch_json.Set("epoch", Json::Number(report.epoch));
    batch_json.Set("ops", Json::Number(uint64_t{report.ops_applied}));
    batch_json.Set("additions", Json::Number(additions));
    batch_json.Set("retractions", Json::Number(retractions));
    batch_json.Set("apply_ms", Json::Number(report.apply_ms));
    batch_json.Set("enumerate_ms", Json::Number(report.enumerate_ms));
    batches_json.Append(std::move(batch_json));
  }

  // The workload now runs once as ordinary requests against the final
  // graph; cold rematch counts must agree with the maintained sets.
  for (size_t q = 0; q < queries.size(); ++q) {
    if (truncated[q]) continue;
    bool limit_hit = false;
    auto rematch = CollectEmbeddings(service, queries[q], args, &limit_hit);
    if (!rematch.has_value()) return 1;
    if (!limit_hit && *rematch != matches[q]) {
      std::fprintf(stderr,
                   "DIVERGENCE on query %zu: incremental set has %zu"
                   " embeddings, cold rematch %zu\n",
                   q, matches[q].size(), rematch->size());
      consistent = false;
    }
  }
  std::printf(
      "replayed %zu batches: +%llu / -%llu matches, apply %.1f ms,"
      " delta-enumerate %.1f ms, incremental vs rematch %s\n",
      stream->batches.size(),
      static_cast<unsigned long long>(total_additions),
      static_cast<unsigned long long>(total_retractions), total_apply_ms,
      total_enumerate_ms, consistent ? "identical" : "DIVERGED");

  const sgm::service::ServiceDynamicStats stats = service.DynamicStats();
  Json root = Json::Object();
  root.Set("bench", Json::String("service_updates"));
  Json workload = Json::Object();
  workload.Set("data", Json::String(args.data_path));
  workload.Set("updates", Json::String(args.updates_path));
  workload.Set("entries", Json::Number(uint64_t{queries.size()}));
  workload.Set("workers", Json::Number(uint64_t{args.workers}));
  root.Set("workload", std::move(workload));
  Json totals = Json::Object();
  totals.Set("batches", Json::Number(uint64_t{stream->batches.size()}));
  totals.Set("ops", Json::Number(uint64_t{stream->op_count()}));
  totals.Set("additions", Json::Number(total_additions));
  totals.Set("retractions", Json::Number(total_retractions));
  totals.Set("apply_ms", Json::Number(total_apply_ms));
  totals.Set("enumerate_ms", Json::Number(total_enumerate_ms));
  totals.Set("graph_epoch", Json::Number(stats.graph_epoch));
  totals.Set("compactions", Json::Number(stats.compactions));
  totals.Set("candidates_repaired", Json::Number(stats.candidates_repaired));
  totals.Set("consistent", Json::Bool(consistent));
  root.Set("totals", std::move(totals));
  root.Set("batches", std::move(batches_json));

  std::ofstream out(args.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
    return 1;
  }
  out << root.Dump(2) << "\n";
  out.close();
  std::printf("wrote %s\n", args.out_path.c_str());

  if (!args.report_path.empty()) {
    sgm::service::MatchRequest last_request;
    last_request.query = queries.back();
    last_request.options.max_matches = args.max_matches;
    last_request.options.time_limit_ms = args.time_limit_ms;
    sgm::service::MatchResponse response = service.Match(last_request);
    const sgm::obs::RunReport report = sgm::service::BuildServedRunReport(
        last_request.query, service.data(), last_request, response,
        service.metrics(), &stats);
    if (!report.WriteFile(args.report_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.report_path.c_str());
  }
  if (!args.metrics_out.empty()) {
    if (!WriteMetricsSnapshot(args.metrics_out)) return 1;
    std::printf("wrote %s\n", args.metrics_out.c_str());
  }
  return consistent ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  std::string error;
  const auto data = sgm::LoadGraphFile(args.data_path, &error);
  if (!data.has_value()) {
    std::fprintf(stderr, "failed to load data graph: %s\n", error.c_str());
    return 1;
  }
  const auto queries = LoadWorkload(args, *data);
  if (!queries.has_value()) return 1;

  if (!args.updates_path.empty()) {
    return RunUpdateReplay(args, *data, *queries);
  }

  std::printf(
      "serving %zu quer%s x %u repeat%s on %u workers, concurrency %u\n",
      queries->size(), queries->size() == 1 ? "y" : "ies", args.repeat,
      args.repeat == 1 ? "" : "s", args.workers, args.concurrency);
  if (args.shards > 1) {
    std::printf("sharded execution: %u shards, %s partitioner\n", args.shards,
                sgm::shard::PartitionerName(args.partitioner));
  }

  std::unique_ptr<sgm::obs::SlowQueryLog> slow_query_log;
  if (!args.slow_query_log_path.empty()) {
    sgm::obs::SlowQueryLog::Options log_options;
    log_options.path = args.slow_query_log_path;
    log_options.threshold_ms = args.slow_query_ms;
    slow_query_log = std::make_unique<sgm::obs::SlowQueryLog>(log_options);
    if (!slow_query_log->ok()) {
      std::fprintf(stderr, "%s\n", slow_query_log->error().c_str());
      return 1;
    }
  }

  std::vector<PassResult> passes;
  {
    MetricsSnapshotWriter snapshot_writer(args.metrics_out,
                                          args.metrics_interval_ms);
    passes.push_back(RunPass(args, *data, *queries, args.cache_mb > 0,
                             slow_query_log.get()));
    if (args.compare_cache && args.cache_mb > 0) {
      passes.push_back(RunPass(args, *data, *queries, /*cache_enabled=*/false,
                               slow_query_log.get()));
    }
  }

  for (const PassResult& pass : passes) {
    const size_t requests = pass.match_counts.size();
    std::printf(
        "pass cache=%s: %.1f ms wall, %.1f req/s, p50 %.2f ms, p99 %.2f ms,"
        " hit-rate %.2f, max queue depth %u\n",
        pass.cache_enabled ? "on" : "off", pass.wall_ms,
        pass.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(requests) / pass.wall_ms
            : 0.0,
        Percentile(pass.latencies_ms, 0.50),
        Percentile(pass.latencies_ms, 0.99), pass.stats.plan_cache.hit_rate(),
        pass.stats.max_queue_depth);
  }

  sgm::obs::Json root = sgm::obs::Json::Object();
  root.Set("bench", sgm::obs::Json::String("service"));
  sgm::obs::Json workload = sgm::obs::Json::Object();
  workload.Set("data", sgm::obs::Json::String(args.data_path));
  workload.Set("entries", sgm::obs::Json::Number(uint64_t{queries->size()}));
  workload.Set("repeat", sgm::obs::Json::Number(uint64_t{args.repeat}));
  workload.Set("workers", sgm::obs::Json::Number(uint64_t{args.workers}));
  workload.Set("concurrency",
               sgm::obs::Json::Number(uint64_t{args.concurrency}));
  workload.Set("shards", sgm::obs::Json::Number(uint64_t{args.shards}));
  workload.Set("partitioner",
               sgm::obs::Json::String(
                   args.shards > 1 ? sgm::shard::PartitionerName(args.partitioner)
                                   : "none"));
  root.Set("workload", std::move(workload));
  sgm::obs::Json passes_json = sgm::obs::Json::Array();
  for (const PassResult& pass : passes) passes_json.Append(PassToJson(pass));
  root.Set("passes", std::move(passes_json));

  bool counts_identical = true;
  if (passes.size() == 2) {
    counts_identical = passes[0].match_counts == passes[1].match_counts;
    const double speedup =
        passes[1].wall_ms > 0.0 && passes[0].wall_ms > 0.0
            ? passes[1].wall_ms / passes[0].wall_ms
            : 0.0;
    root.Set("speedup", sgm::obs::Json::Number(speedup));
    root.Set("match_counts_identical", sgm::obs::Json::Bool(counts_identical));
    std::printf("cache speedup: %.2fx, match counts %s\n", speedup,
                counts_identical ? "identical" : "DIVERGED");
  }

  std::ofstream out(args.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
    return 1;
  }
  out << root.Dump(2) << "\n";
  out.close();
  std::printf("wrote %s\n", args.out_path.c_str());

  if (!args.metrics_out.empty()) {
    if (!WriteMetricsSnapshot(args.metrics_out)) return 1;
    std::printf("wrote %s\n", args.metrics_out.c_str());
  }
  if (slow_query_log != nullptr) {
    std::printf("slow-query log %s: %llu record%s at threshold %.1f ms\n",
                slow_query_log->path().c_str(),
                static_cast<unsigned long long>(slow_query_log->entries()),
                slow_query_log->entries() == 1 ? "" : "s",
                slow_query_log->threshold_ms());
  }

  if (!args.report_path.empty() && !passes.empty() &&
      !passes.front().latencies_ms.empty()) {
    const PassResult& pass = passes.front();
    sgm::service::MatchRequest last_request;
    last_request.query = (*queries)[pass.last_query];
    last_request.options.max_matches = args.max_matches;
    last_request.options.time_limit_ms = args.time_limit_ms;
    last_request.deadline_ms = args.deadline_ms;
    const sgm::obs::RunReport report = sgm::service::BuildServedRunReport(
        last_request.query, *data, last_request, pass.last_response,
        &sgm::obs::MetricsRegistry::Default());
    if (!report.WriteFile(args.report_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.report_path.c_str());
  }

  return counts_identical ? 0 : 3;
}
