// Command-line subgraph matcher.
//
//   sgm_match --query q.graph --data g.graph [options]
//
// Options (value flags accept both "--flag VALUE" and "--flag=VALUE"):
//   --algorithm NAME   QSI|GQL|CFL|CECI|DP|RI|2PP|GLW|ULL|VF2|WCOJ
//                      (framework names run the optimized variant; prefix
//                      with "classic-" for the original, e.g. classic-CFL)
//   --failing-sets     enable failing-set pruning (framework algorithms)
//   --intersection M   merge|galloping|hybrid|qfilter|bitmap|auto — set
//                      intersection kernel of the intersect-based engines;
//                      bitmap/auto additionally build the bitmap sidecar of
//                      the auxiliary structure (framework only)
//   --no-lc-cache      disable the per-depth local-candidate reuse cache
//   --max-matches N    stop after N matches (default 100000, 0 = all)
//   --time-limit-ms N  per-query kill limit (default 300000)
//   --threads N        parallel enumeration with N workers (framework only)
//   --shards K         sharded execution: split the data graph into K
//                      vertex shards, enumerate shard-locally and merge
//                      with a boundary pass (framework only)
//   --partitioner P    hash|greedy — shard partitioner (default greedy)
//   --report FILE      write the structured RunReport JSON (framework only)
//   --trace FILE       write a Chrome trace-event file — open it in
//                      ui.perfetto.dev or chrome://tracing (framework only)
//   --depth-profile    collect the per-depth search profile; printed as a
//                      table and embedded in --report (framework only)
//   --print-matches    write each embedding to stdout
//   --count-only       suppress everything except the match count
//
// Exit codes: 0 ok, 1 load error, 2 usage error, 3 query unsolved (killed
// by the time limit).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "sgm/baselines/ullmann.h"
#include "sgm/baselines/vf2.h"
#include "sgm/glasgow/glasgow.h"
#include "sgm/graph/graph_io.h"
#include "sgm/graph/graph_utils.h"
#include "sgm/matcher.h"
#include "sgm/obs/collector.h"
#include "sgm/obs/run_report.h"
#include "sgm/parallel/parallel_matcher.h"
#include "sgm/plan.h"
#include "sgm/shard/sharded_graph.h"
#include "sgm/wcoj/generic_join.h"

namespace {

struct CliArgs {
  std::string query_path;
  std::string data_path;
  std::string algorithm = "GQL";
  bool failing_sets = false;
  std::optional<sgm::IntersectionMethod> intersection;
  bool lc_cache = true;
  uint64_t max_matches = 100000;
  double time_limit_ms = 300000.0;
  uint32_t threads = 1;
  uint32_t shards = 0;
  sgm::shard::Partitioner partitioner = sgm::shard::Partitioner::kGreedy;
  std::string report_path;
  std::string trace_path;
  bool depth_profile = false;
  bool print_matches = false;
  bool count_only = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sgm_match --query q.graph --data g.graph"
               " [--algorithm NAME] [--failing-sets] [--intersection M]"
               " [--no-lc-cache] [--max-matches N]"
               " [--time-limit-ms N] [--threads N] [--shards K]"
               " [--partitioner P] [--report FILE.json]"
               " [--trace FILE.json] [--depth-profile] [--print-matches]"
               " [--count-only]\n"
               "run 'sgm_match --help' for details\n");
}

void PrintHelp() {
  std::printf(
      "usage: sgm_match --query q.graph --data g.graph [options]\n"
      "\n"
      "Runs one subgraph matching query. Value flags accept both\n"
      "'--flag VALUE' and '--flag=VALUE'.\n"
      "\n"
      "required:\n"
      "  --query FILE        query graph (connected, 1..64 vertices)\n"
      "  --data FILE         data graph\n"
      "options:\n"
      "  --algorithm NAME    QSI|GQL|CFL|CECI|DP|RI|2PP|GLW|ULL|VF2|WCOJ\n"
      "                      (framework names run the optimized variant;\n"
      "                      prefix with 'classic-' for the original,\n"
      "                      e.g. classic-CFL; default GQL)\n"
      "  --failing-sets      enable failing-set pruning (framework only)\n"
      "  --intersection M    merge|galloping|hybrid|qfilter|bitmap|auto —\n"
      "                      set-intersection kernel of the intersect-based\n"
      "                      engines; bitmap/auto additionally build the\n"
      "                      bitmap sidecar (framework only)\n"
      "  --no-lc-cache       disable the per-depth local-candidate reuse\n"
      "                      cache\n"
      "  --max-matches N     stop after N matches (default 100000, 0 = all)\n"
      "  --time-limit-ms N   per-query kill limit (default 300000)\n"
      "  --threads N         parallel enumeration with N workers\n"
      "                      (framework only)\n"
      "  --shards K          sharded execution: split the data graph into K\n"
      "                      vertex shards, enumerate shard-locally and\n"
      "                      merge with a boundary pass (framework only)\n"
      "  --partitioner P     hash|greedy — shard partitioner (default\n"
      "                      greedy)\n"
      "  --report FILE       write the structured RunReport JSON\n"
      "                      (framework only)\n"
      "  --trace FILE        write a Chrome trace-event file (framework\n"
      "                      only)\n"
      "  --depth-profile     collect the per-depth search profile\n"
      "                      (framework only)\n"
      "  --print-matches     write each embedding to stdout\n"
      "  --count-only        suppress everything except the match count\n"
      "  --help              show this message and exit\n"
      "\n"
      "exit codes: 0 ok, 1 load error, 2 usage error, 3 query unsolved\n"
      "            (killed by the time limit)\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept --flag=value: split once, treating the remainder as the value.
    std::optional<std::string> inline_value;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
    }
    const auto next = [&]() -> std::optional<std::string> {
      if (inline_value.has_value()) return inline_value;
      if (i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (flag == "--help") {
      PrintHelp();
      std::exit(0);
    } else if (flag == "--query") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->query_path = *value;
    } else if (flag == "--data") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->data_path = *value;
    } else if (flag == "--algorithm") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->algorithm = *value;
    } else if (flag == "--failing-sets") {
      args->failing_sets = true;
    } else if (flag == "--intersection") {
      const auto value = next();
      if (!value.has_value()) return false;
      sgm::IntersectionMethod method;
      if (!sgm::IntersectionMethodFromName(*value, &method)) {
        std::fprintf(stderr, "unknown intersection method: %s\n",
                     value->c_str());
        return false;
      }
      args->intersection = method;
    } else if (flag == "--no-lc-cache") {
      args->lc_cache = false;
    } else if (flag == "--max-matches") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->max_matches = std::strtoull(value->c_str(), nullptr, 10);
    } else if (flag == "--time-limit-ms") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->time_limit_ms = std::strtod(value->c_str(), nullptr);
    } else if (flag == "--threads") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->threads =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--shards") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->shards =
          static_cast<uint32_t>(std::strtoul(value->c_str(), nullptr, 10));
    } else if (flag == "--partitioner") {
      const auto value = next();
      if (!value.has_value()) return false;
      const auto partitioner = sgm::shard::ParsePartitioner(*value);
      if (!partitioner.has_value()) {
        std::fprintf(stderr, "unknown partitioner: %s\n", value->c_str());
        return false;
      }
      args->partitioner = *partitioner;
    } else if (flag == "--report") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->report_path = *value;
    } else if (flag == "--trace") {
      const auto value = next();
      if (!value.has_value()) return false;
      args->trace_path = *value;
    } else if (flag == "--depth-profile") {
      args->depth_profile = true;
    } else if (flag == "--print-matches") {
      args->print_matches = true;
    } else if (flag == "--count-only") {
      args->count_only = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->query_path.empty() && !args->data_path.empty();
}

std::optional<sgm::Algorithm> FrameworkAlgorithm(const std::string& name) {
  for (const sgm::Algorithm algorithm : sgm::kAllAlgorithms) {
    if (name == sgm::AlgorithmName(algorithm)) return algorithm;
  }
  return std::nullopt;
}

sgm::MatchCallback MakePrinter(const CliArgs& args, uint32_t query_size) {
  if (!args.print_matches) return {};
  return [query_size](std::span<const sgm::Vertex> mapping) {
    std::printf("match:");
    for (uint32_t u = 0; u < query_size; ++u) {
      std::printf(" %u", mapping[u]);
    }
    std::printf("\n");
    return true;
  };
}

void PrintDepthProfile(const sgm::obs::DepthProfile& profile) {
  std::printf(
      "depth-profile: depth calls lc-total lc-empty conflicts fs-prunes"
      " matches sampled-ms\n");
  for (size_t d = 0; d < profile.depths.size(); ++d) {
    const sgm::obs::DepthStats& s = profile.depths[d];
    std::printf("depth-profile: %5zu %5llu %8llu %8llu %9llu %9llu %7llu"
                " %10.2f\n",
                d, static_cast<unsigned long long>(s.recursion_calls),
                static_cast<unsigned long long>(s.local_candidates),
                static_cast<unsigned long long>(s.empty_local_candidates),
                static_cast<unsigned long long>(s.conflicts),
                static_cast<unsigned long long>(s.failing_set_prunes),
                static_cast<unsigned long long>(s.matches), s.sampled_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  std::string error;
  const auto query = sgm::LoadGraphFile(args.query_path, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "failed to load query: %s\n", error.c_str());
    return 1;
  }
  const auto data = sgm::LoadGraphFile(args.data_path, &error);
  if (!data.has_value()) {
    std::fprintf(stderr, "failed to load data graph: %s\n", error.c_str());
    return 1;
  }
  if (query->vertex_count() == 0) {
    std::fprintf(stderr, "query graph has no vertices\n");
    return 1;
  }
  if (!sgm::IsConnected(*query)) {
    std::fprintf(stderr, "query graph must be connected\n");
    return 1;
  }

  uint64_t matches = 0;
  double total_ms = 0.0;
  std::string status = "ok";
  // Counters of the framework engines; stays null for the baselines.
  const sgm::EnumerateStats* counters = nullptr;
  sgm::EnumerateStats framework_counters;
  const auto printer = MakePrinter(args, query->vertex_count());

  const bool wants_obs = !args.report_path.empty() ||
                         !args.trace_path.empty() || args.depth_profile;

  if (args.algorithm == "GLW") {
    sgm::GlasgowOptions options;
    options.max_matches = args.max_matches;
    options.time_limit_ms = args.time_limit_ms;
    const auto result = sgm::GlasgowMatch(*query, *data, options, printer);
    matches = result.match_count;
    total_ms = result.total_ms;
    status = sgm::GlasgowStatusName(result.status);
  } else if (args.algorithm == "ULL") {
    sgm::UllmannOptions options;
    options.max_matches = args.max_matches;
    options.time_limit_ms = args.time_limit_ms;
    const auto result = sgm::UllmannMatch(*query, *data, options, printer);
    matches = result.match_count;
    total_ms = result.total_ms;
    if (result.timed_out) status = "timeout";
  } else if (args.algorithm == "VF2") {
    sgm::Vf2Options options;
    options.max_matches = args.max_matches;
    options.time_limit_ms = args.time_limit_ms;
    const auto result = sgm::Vf2Match(*query, *data, options, printer);
    matches = result.match_count;
    total_ms = result.total_ms;
    if (result.timed_out) status = "timeout";
  } else if (args.algorithm == "WCOJ") {
    sgm::WcojOptions options;
    options.max_results = args.max_matches;
    options.time_limit_ms = args.time_limit_ms;
    const auto result = sgm::GenericJoinMatch(*query, *data, options, printer);
    matches = result.result_count;
    total_ms = result.total_ms;
    if (result.timed_out) status = "timeout";
  } else {
    const bool classic = args.algorithm.rfind("classic-", 0) == 0;
    const std::string name =
        classic ? args.algorithm.substr(8) : args.algorithm;
    const auto algorithm = FrameworkAlgorithm(name);
    if (!algorithm.has_value()) {
      std::fprintf(stderr, "unknown algorithm: %s\n", args.algorithm.c_str());
      return 2;
    }
    if (query->vertex_count() > sgm::kMaxQueryVertices) {
      std::fprintf(stderr,
                   "query has %u vertices; the framework engine supports at"
                   " most %u\n",
                   query->vertex_count(), sgm::kMaxQueryVertices);
      return 1;
    }
    sgm::MatchOptions options = classic
                                    ? sgm::MatchOptions::Classic(*algorithm)
                                    : sgm::MatchOptions::Optimized(*algorithm);
    options.use_failing_sets = args.failing_sets || options.use_failing_sets;
    if (args.intersection.has_value()) {
      options.intersection = *args.intersection;
    }
    options.use_lc_cache = args.lc_cache;
    options.max_matches = args.max_matches;
    options.time_limit_ms = args.time_limit_ms;

    sgm::obs::Collector collector;
    if (!args.trace_path.empty()) collector.EnableTrace();
    if (args.depth_profile || !args.report_path.empty()) {
      collector.EnableDepthProfile();
    }
    if (wants_obs) options.collector = &collector;

    sgm::obs::RunReport report;
    if (args.shards > 1) {
      if (args.threads > 1) {
        std::fprintf(stderr, "--shards and --threads are mutually exclusive\n");
        return 2;
      }
      const sgm::shard::ShardedGraph sharded(*data, args.shards,
                                             args.partitioner);
      const auto result =
          sgm::ShardedMatchQuery(*query, sharded, options, printer);
      matches = result.result.match_count;
      total_ms = result.result.total_ms;
      if (result.result.unsolved()) status = "timeout";
      framework_counters = result.result.enumerate;
      report = sgm::obs::BuildRunReport(*query, *data, options, result);
      if (!args.count_only) {
        const sgm::ShardedRunInfo& info = result.sharding;
        std::printf(
            "sharding: shards=%u partitioner=%s cut_edges=%llu"
            " boundary_vertices=%u boundary_radius=%u region_vertices=%u\n",
            info.shard_count, sgm::shard::PartitionerName(info.partitioner),
            static_cast<unsigned long long>(info.cut_edges),
            info.boundary_vertex_count, info.boundary_radius,
            info.region_vertices);
        for (const sgm::ShardPassStats& pass : info.passes) {
          const std::string label =
              pass.boundary ? "boundary" : "shard" + std::to_string(pass.shard);
          std::printf(
              "sharding: pass=%s matches=%llu vertices=%u owned=%u"
              " aux_bytes=%zu build_ms=%.3f enumerate_ms=%.3f\n",
              label.c_str(), static_cast<unsigned long long>(pass.match_count),
              pass.graph_vertices, pass.owned_vertices, pass.aux_memory_bytes,
              pass.build_ms, pass.enumerate_ms);
        }
      }
    } else if (args.threads > 1) {
      const auto parallel = sgm::ParallelMatchQuery(*query, *data, options,
                                                    args.threads, printer);
      matches = parallel.result.match_count;
      total_ms = parallel.result.total_ms;
      if (parallel.result.unsolved()) status = "timeout";
      framework_counters = parallel.result.enumerate;
      report = sgm::obs::BuildRunReport(*query, *data, options, parallel);
      if (args.depth_profile && !args.count_only) {
        PrintDepthProfile(parallel.result.depth_profile);
      }
    } else {
      const auto result = sgm::MatchQuery(*query, *data, options, printer);
      matches = result.match_count;
      total_ms = result.total_ms;
      if (result.unsolved()) status = "timeout";
      framework_counters = result.enumerate;
      report = sgm::obs::BuildRunReport(*query, *data, options, result);
      if (args.depth_profile && !args.count_only) {
        PrintDepthProfile(result.depth_profile);
      }
    }
    counters = &framework_counters;

    if (!args.report_path.empty() &&
        !report.WriteFile(args.report_path, &error)) {
      std::fprintf(stderr, "failed to write report: %s\n", error.c_str());
      return 1;
    }
    if (!args.trace_path.empty() &&
        !collector.trace_buffer().WriteFile(args.trace_path, &error)) {
      std::fprintf(stderr, "failed to write trace: %s\n", error.c_str());
      return 1;
    }
  }

  if (wants_obs && counters == nullptr) {
    std::fprintf(stderr,
                 "warning: --report/--trace/--depth-profile are only"
                 " supported by the framework algorithms; ignored for %s\n",
                 args.algorithm.c_str());
  }
  if (args.shards > 1 && counters == nullptr) {
    std::fprintf(stderr,
                 "warning: --shards is only supported by the framework"
                 " algorithms; ignored for %s\n",
                 args.algorithm.c_str());
  }

  if (args.count_only) {
    std::printf("%llu\n", static_cast<unsigned long long>(matches));
  } else if (counters != nullptr) {
    std::printf(
        "algorithm=%s matches=%llu time_ms=%.3f status=%s"
        " recursion_calls=%llu local_candidates_scanned=%llu"
        " failing_set_prunes=%llu bitmap_intersections=%llu"
        " lc_cache_hits=%llu lc_cache_misses=%llu\n",
        args.algorithm.c_str(), static_cast<unsigned long long>(matches),
        total_ms, status.c_str(),
        static_cast<unsigned long long>(counters->recursion_calls),
        static_cast<unsigned long long>(counters->local_candidates_scanned),
        static_cast<unsigned long long>(counters->failing_set_prunes),
        static_cast<unsigned long long>(counters->bitmap_intersections),
        static_cast<unsigned long long>(counters->lc_cache_hits),
        static_cast<unsigned long long>(counters->lc_cache_misses));
  } else {
    std::printf("algorithm=%s matches=%llu time_ms=%.3f status=%s\n",
                args.algorithm.c_str(),
                static_cast<unsigned long long>(matches), total_ms,
                status.c_str());
  }
  // An unsolved (timed-out) query is a failed run for scripting purposes.
  return status == "timeout" ? 3 : 0;
}
